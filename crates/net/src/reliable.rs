//! Reliable exactly-once in-order delivery over a lossy [`Transport`].
//!
//! [`ReliableTransport`] restores the delivery guarantees the rest of the
//! stack assumes — every message arrives exactly once, uncorrupted, in
//! per-stream FIFO order — on top of a transport that may drop, duplicate,
//! corrupt, or reorder messages (e.g. [`crate::FaultyTransport`]). The
//! protocol is go-back-N per peer pair:
//!
//! - Every user message is framed with a per-peer cumulative **sequence
//!   number**, its original tag, and a CRC32 checksum, and tunneled over
//!   the single reserved wire tag [`RELIABLE_TAG`]. One sequence space per
//!   peer (rather than per tag) suffices because each peer pair shares one
//!   FIFO tunnel; the original tag rides inside the frame and messages are
//!   demultiplexed back after reassembly.
//! - The receiver delivers in-sequence frames, **ACK**s cumulatively,
//!   **NACK**s on a sequence gap (rate-limited to one NACK per gap), drops
//!   and re-ACKs duplicates, and drops frames that fail their checksum
//!   (the go-back retransmission recovers them).
//! - The sender keeps unacknowledged frames in a bounded window and
//!   retransmits them all when the retransmission timeout (RTO) expires,
//!   backing off exponentially. A NACK triggers the same go-back
//!   retransmission immediately. Consecutive timeouts without any ACK
//!   progress count as *strikes*; at [`RetryPolicy::max_retries`] strikes
//!   the peer is declared dead and every subsequent operation involving it
//!   returns [`NetError::PeerUnreachable`] instead of blocking forever.
//!
//! There are no background threads: retransmission timers are checked
//! whenever this endpoint touches the network (every send polls for ACKs
//! without waiting; every receive pumps the wire in RTO-sized slices), so
//! the wrapper composes with the workspace's one-thread-per-host cluster
//! simulation unchanged.
//!
//! Self-sends (`dst == rank`) never touch the wire: they are moved
//! directly into the local delivery buffer, which is trivially
//! exactly-once.
//!
//! # Corruption contract with the codec
//!
//! The CRC check here is the *first* line of defence: a frame mangled on
//! the wire fails its checksum, is dropped, and is recovered by
//! retransmission — the sync codec never sees the damage. Payloads that
//! bypass this layer (a bare transport, or corruption introduced beyond
//! the CRC) hit the codec's own validators instead, which surface them as
//! [`gluon` `DecodeError`]s through `try_sync` rather than panicking. The
//! chaos suite exercises both lines: corruption under `ReliableTransport`
//! must stay bit-identical, corruption on a bare `FaultyTransport` must
//! surface as counted decode errors.

use crate::detector::{DetectorConfig, FailureDetector};
use crate::error::NetError;
use crate::stats::NetStats;
use crate::transport::{Envelope, Transport};
use bytes::Bytes;
use gluon_metrics::NetMetrics;
use gluon_trace::Tracer;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Wire tag reserved for reliability frames.
///
/// User tags live in `[0, MAX_USER_TAG)` and collective tags in
/// `[COLLECTIVE_TAG_BASE, RELIABLE_TAG)`; both are tunneled inside
/// reliability frames, so this single tag is the only one that appears on
/// the wire below a [`ReliableTransport`].
pub const RELIABLE_TAG: u32 = 1 << 25;

const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;
const KIND_NACK: u8 = 2;
/// Heartbeat frame: carries no sequence state, only proves liveness to the
/// receiver's failure detector. Fire-and-forget (never retransmitted).
const KIND_BEAT: u8 = 3;

/// DATA frame header: kind(1) + seq(8) + orig_tag(4) + crc(4).
const DATA_HEADER: usize = 17;
/// ACK/NACK frame: kind(1) + seq(8) + crc(4).
const CTRL_FRAME: usize = 13;

/// Retransmission tuning for a [`ReliableTransport`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Initial retransmission timeout.
    pub initial_rto: Duration,
    /// RTO multiplier applied per strike (exponential backoff).
    pub backoff: u32,
    /// Ceiling on the backed-off RTO.
    pub max_rto: Duration,
    /// Consecutive timeouts without ACK progress before a peer is
    /// declared dead.
    pub max_retries: u32,
    /// Maximum in-flight (unacknowledged) frames per peer; sends past the
    /// window block until the window opens.
    pub window: usize,
    /// Upper bound on how long one receive may wait without any delivery
    /// progress before reporting the awaited peer unreachable.
    pub recv_budget: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            initial_rto: Duration::from_millis(1),
            backoff: 2,
            max_rto: Duration::from_millis(16),
            max_retries: 25,
            window: 64,
            recv_budget: Duration::from_secs(10),
        }
    }
}

/// Full reliability-layer configuration: the retransmission policy plus an
/// optional heartbeat failure detector.
///
/// With `detector: None` (the default, and what [`ReliableTransport::over`]
/// / [`ReliableTransport::with_policy`] use) behavior is exactly the
/// legacy go-back-N protocol: no heartbeat traffic, and peer failure only
/// ever surfaces as [`NetError::PeerUnreachable`] after budget exhaustion.
/// With a detector, hosts additionally exchange heartbeats whenever they
/// touch the wire and sustained silence from a peer surfaces as the much
/// faster [`NetError::PeerDown`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ReliableConfig {
    /// Retransmission tuning.
    pub retry: RetryPolicy,
    /// Heartbeat failure detection; `None` disables it.
    pub detector: Option<DetectorConfig>,
}

impl ReliableConfig {
    /// The default policy with the default failure detector enabled.
    pub fn detecting() -> ReliableConfig {
        ReliableConfig {
            retry: RetryPolicy::default(),
            detector: Some(DetectorConfig::default()),
        }
    }

    /// Replaces the retransmission policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> ReliableConfig {
        self.retry = retry;
        self
    }

    /// Enables (or reconfigures) the failure detector.
    pub fn with_detector(mut self, detector: DetectorConfig) -> ReliableConfig {
        self.detector = Some(detector);
        self
    }
}

/// Sender-side state for one peer.
#[derive(Debug)]
struct OutPeer {
    /// Next sequence number to assign.
    next_seq: u64,
    /// Sent but unacknowledged frames, oldest first.
    unacked: VecDeque<(u64, Bytes)>,
    /// Current (possibly backed-off) retransmission timeout.
    rto: Duration,
    /// Consecutive RTO expiries without ACK progress.
    strikes: u32,
    /// When the window base was last (re)transmitted.
    last_tx: Instant,
    /// When a NACK last triggered a fast retransmission (rate limit).
    last_fast_retx: Instant,
}

/// Receiver-side state for one peer.
#[derive(Debug)]
struct InPeer {
    /// Next sequence number we will accept.
    expected: u64,
    /// The `expected` value we last NACKed, to send one NACK per gap.
    last_nacked: Option<u64>,
}

#[derive(Debug)]
struct State {
    out: Vec<OutPeer>,
    inc: Vec<InPeer>,
    /// Reassembled messages awaiting a directed recv, keyed `(src, tag)`.
    buf_exact: HashMap<(usize, u32), VecDeque<Bytes>>,
    /// Twin index for recv_any, keyed by tag.
    buf_any: HashMap<u32, VecDeque<(usize, Bytes)>>,
    /// Peers declared dead, with the error that killed them (retry budget
    /// exhaustion or failure-detector suspicion); every later operation
    /// involving a dead peer returns its stored error immediately.
    dead: Vec<Option<NetError>>,
    /// Heartbeat failure detector, when configured.
    detector: Option<FailureDetector>,
    /// When this host last emitted a heartbeat volley.
    last_beat: Instant,
}

impl State {
    fn is_dead(&self, peer: usize) -> bool {
        self.dead[peer].is_some()
    }
}

/// Go-back-N reliability wrapper around any [`Transport`].
///
/// # Examples
///
/// ```
/// use gluon_net::{FaultCounters, FaultPlan, FaultyTransport,
///                 MemoryTransport, ReliableTransport, Transport};
/// use bytes::Bytes;
/// use std::thread;
///
/// let mut eps = MemoryTransport::cluster(2);
/// let counters = FaultCounters::new();
/// let wrap = |ep: MemoryTransport| {
///     let seed = ep.rank() as u64;
///     ReliableTransport::over(FaultyTransport::new(
///         ep,
///         FaultPlan::lossy(seed),
///         counters.clone(),
///     ))
/// };
/// let b = wrap(eps.pop().unwrap());
/// let a = wrap(eps.pop().unwrap());
/// thread::scope(|s| {
///     s.spawn(|| {
///         for i in 0..64u32 {
///             a.try_send(1, 3, Bytes::copy_from_slice(&i.to_le_bytes()))
///                 .unwrap();
///         }
///         a.flush();
///     });
///     s.spawn(|| {
///         for i in 0..64u32 {
///             // Exactly once, in order, despite the lossy wire.
///             assert_eq!(&b.try_recv(0, 3).unwrap()[..], &i.to_le_bytes());
///         }
///     });
/// });
/// ```
#[derive(Debug)]
pub struct ReliableTransport<T: Transport> {
    inner: T,
    policy: RetryPolicy,
    tracer: Tracer,
    metrics: NetMetrics,
    state: Mutex<State>,
    /// Last sync-phase index reported via [`Transport::note_round`]; stamps
    /// peer-failure errors so a supervisor knows where to roll back to.
    round: AtomicU64,
}

/// Best-effort delivery of anything still unacknowledged when the wrapper
/// goes away (bounded by the retry budget; errors are swallowed since the
/// host is already shutting down).
impl<T: Transport> Drop for ReliableTransport<T> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl<T: Transport> ReliableTransport<T> {
    /// Wraps `inner` with the default [`RetryPolicy`].
    pub fn over(inner: T) -> ReliableTransport<T> {
        ReliableTransport::with_policy(inner, RetryPolicy::default())
    }

    /// Wraps `inner` with an explicit policy (no failure detector).
    pub fn with_policy(inner: T, policy: RetryPolicy) -> ReliableTransport<T> {
        ReliableTransport::with_config(
            inner,
            ReliableConfig {
                retry: policy,
                detector: None,
            },
        )
    }

    /// Wraps `inner` with a full [`ReliableConfig`] (retransmission policy
    /// plus optional heartbeat failure detection).
    pub fn with_config(inner: T, config: ReliableConfig) -> ReliableTransport<T> {
        let world = inner.world_size();
        let now = Instant::now();
        let policy = config.retry;
        ReliableTransport {
            inner,
            policy,
            tracer: Tracer::disabled(),
            metrics: NetMetrics::disabled(),
            state: Mutex::new(State {
                out: (0..world)
                    .map(|_| OutPeer {
                        next_seq: 0,
                        unacked: VecDeque::new(),
                        rto: policy.initial_rto,
                        strikes: 0,
                        last_tx: now,
                        last_fast_retx: now,
                    })
                    .collect(),
                inc: (0..world)
                    .map(|_| InPeer {
                        expected: 0,
                        last_nacked: None,
                    })
                    .collect(),
                buf_exact: HashMap::new(),
                buf_any: HashMap::new(),
                dead: vec![None; world],
                detector: config.detector.map(|d| FailureDetector::new(d, world)),
                last_beat: now,
            }),
            round: AtomicU64::new(0),
        }
    }

    /// Attaches a [`Tracer`]: retransmissions, suppressed duplicates, and
    /// CRC rejections are then tagged as distinct instant events in the
    /// trace, distinguishing recovery traffic from first-transmission
    /// traffic in chaos runs.
    pub fn with_tracer(mut self, tracer: Tracer) -> ReliableTransport<T> {
        self.tracer = tracer;
        self
    }

    /// Attaches a [`NetMetrics`] bundle: retransmissions (frames and
    /// bytes), suppressed duplicates, CRC rejections, and peers declared
    /// dead are then published as queryable counters alongside the
    /// existing `NetStats` books and trace events.
    pub fn with_metrics(mut self, metrics: NetMetrics) -> ReliableTransport<T> {
        self.metrics = metrics;
        self
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The active retransmission policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Pumps the wire until every peer has acknowledged everything we
    /// sent, a peer dies trying, or the retry budget elapses.
    pub fn flush(&self) {
        let deadline = Instant::now() + self.policy.recv_budget;
        let mut st = self.state.lock();
        loop {
            let pending =
                (0..st.out.len()).any(|p| !st.is_dead(p) && !st.out[p].unacked.is_empty());
            if !pending || Instant::now() >= deadline {
                return;
            }
            let wait = self.pump_wait(&st, Duration::from_millis(5));
            self.pump(&mut st, wait);
        }
    }

    /// How long the next wire wait may be without missing a
    /// retransmission deadline, capped at `cap`.
    fn pump_wait(&self, st: &State, cap: Duration) -> Duration {
        let now = Instant::now();
        let mut wait = cap;
        for (p, o) in st.out.iter().enumerate() {
            if st.is_dead(p) || o.unacked.is_empty() {
                continue;
            }
            wait = wait.min((o.last_tx + o.rto).saturating_duration_since(now));
        }
        wait.max(Duration::from_micros(50))
    }

    /// Waits up to `wait` for one wire frame, processes it, and fires any
    /// expired retransmission timers.
    fn pump(&self, st: &mut State, wait: Duration) {
        self.maybe_beat(st);
        self.pump_once(st, wait);
        self.check_timers(st);
    }

    /// Drains frames already on the wire without waiting (used after
    /// sends so ACKs keep flowing during send-heavy phases).
    fn poll(&self, st: &mut State) {
        self.maybe_beat(st);
        while self.pump_once(st, Duration::ZERO) {}
        self.check_timers(st);
    }

    /// Pulls at most one wire frame (waiting up to `wait`) and processes
    /// it; returns whether a frame was consumed.
    ///
    /// This is where the unified timeout contract pays off: expiry is the
    /// typed [`NetError::Timeout`], which — on `MemoryTransport` and
    /// `SocketTransport` alike — is fed into the detector's silence
    /// accounting simply by *not* registering a `heard`, exactly as the old
    /// `None` sentinel did. A backend-reported *peer* failure (a socket
    /// peer's connection broke) is latched as a dead peer so the failure
    /// detector and crash supervisor above work unmodified.
    fn pump_once(&self, st: &mut State, wait: Duration) -> bool {
        match self.inner.try_recv_any_timeout(RELIABLE_TAG, wait) {
            Ok(env) => {
                self.process(st, env);
                true
            }
            Err(NetError::Timeout) => false,
            Err(err) => {
                if let Some(peer) = err.peer() {
                    if !st.is_dead(peer) {
                        self.declare_dead(st, peer, err);
                    }
                }
                // Local terminal failures (cancellation, injected crash)
                // surface through `inner_failure` in the blocking loops.
                false
            }
        }
    }

    /// Emits a heartbeat volley to every live peer if the detector is
    /// configured and the heartbeat interval elapsed. Heartbeat send
    /// errors are swallowed — a crashed [`crate::FaultyTransport`] or a
    /// broken socket delivers nothing, which is exactly the silence peers
    /// must observe.
    fn maybe_beat(&self, st: &mut State) {
        let Some(detector) = &st.detector else {
            return;
        };
        if st.last_beat.elapsed() < detector.config().heartbeat_every {
            return;
        }
        st.last_beat = Instant::now();
        let me = self.inner.rank();
        for p in 0..st.out.len() {
            if p != me && !st.is_dead(p) {
                self.send_ctrl(p, KIND_BEAT, 0);
            }
        }
    }

    /// Declares `peer` down with `err`: records it so every later
    /// operation fails fast, drops its retransmission queue, and emits a
    /// trace event.
    fn declare_dead(&self, st: &mut State, peer: usize, err: NetError) {
        st.dead[peer] = Some(err);
        st.out[peer].unacked.clear();
        let kind = match err {
            NetError::PeerDown { .. } => "peer_down",
            _ => "peer_unreachable",
        };
        self.tracer.record_event(self.inner.rank(), kind, peer, 0);
        self.metrics.on_peer_down();
    }

    /// Polls the failure detector: if any live peer has been silent past
    /// the suspicion threshold, declares it down and returns the error.
    fn check_detector(&self, st: &mut State) -> Option<NetError> {
        let now = Instant::now();
        let world = st.out.len();
        let me = self.inner.rank();
        for p in 0..world {
            if p == me || st.is_dead(p) {
                continue;
            }
            let suspect = match &mut st.detector {
                Some(d) => d.suspect(p, now),
                None => false,
            };
            if suspect {
                let err = NetError::PeerDown {
                    peer: p,
                    round: self.round.load(Ordering::Relaxed),
                };
                self.declare_dead(st, p, err);
                return Some(err);
            }
        }
        None
    }

    /// A failure observed below us (an injected local crash or a tripped
    /// cluster cancellation token), checked from every blocking loop so
    /// this host unwinds instead of pumping a wire that is gone.
    fn inner_failure(&self) -> Option<NetError> {
        self.inner.cancelled()
    }

    /// Retransmits expired windows and converts persistent silence into
    /// dead peers.
    fn check_timers(&self, st: &mut State) {
        let now = Instant::now();
        for p in 0..st.out.len() {
            if st.is_dead(p) || st.out[p].unacked.is_empty() {
                continue;
            }
            if now.saturating_duration_since(st.out[p].last_tx) < st.out[p].rto {
                continue;
            }
            self.retransmit(&mut st.out[p], p);
            let o = &mut st.out[p];
            o.strikes += 1;
            o.rto = (o.rto * self.policy.backoff).min(self.policy.max_rto);
            if o.strikes >= self.policy.max_retries {
                // Stop retransmitting into the void.
                let err = self.unreachable(p);
                self.declare_dead(st, p, err);
            }
        }
    }

    /// Resends every unacknowledged frame to `peer` (go-back-N).
    fn retransmit(&self, o: &mut OutPeer, peer: usize) {
        for (_, frame) in &o.unacked {
            self.inner.stats().record_retransmit(frame.len() as u64);
            self.tracer
                .record_event(self.inner.rank(), "retransmit", peer, frame.len() as u64);
            self.metrics.on_retransmit(frame.len() as u64);
            // A failed retransmission is just more silence: the strike
            // counter and detector convert it into a dead peer.
            let _ = self.inner.try_send(peer, RELIABLE_TAG, frame.clone());
        }
        o.last_tx = Instant::now();
    }

    /// Handles one incoming wire frame.
    fn process(&self, st: &mut State, env: Envelope) {
        let src = env.src;
        if src == self.inner.rank() {
            // Self traffic bypasses the wire; anything here is stray.
            return;
        }
        // Any frame — data, control, heartbeat, even one that fails its
        // checksum — proves the peer's stack is alive.
        if let Some(d) = &mut st.detector {
            d.heard(src, Instant::now());
        }
        let f = &env.payload;
        if f.len() == CTRL_FRAME && f[0] == KIND_BEAT {
            // Liveness only; `heard` above already consumed it.
            return;
        }
        if f.len() >= DATA_HEADER && f[0] == KIND_DATA {
            let stored = read_u32(&f[13..17]);
            if crc32_parts(&[&f[..13], &f[DATA_HEADER..]]) != stored {
                self.on_corrupt(st, src);
                return;
            }
            let seq = read_u64(&f[1..9]);
            let tag = read_u32(&f[9..13]);
            self.on_data(st, src, seq, tag, Bytes::copy_from_slice(&f[DATA_HEADER..]));
        } else if f.len() == CTRL_FRAME && (f[0] == KIND_ACK || f[0] == KIND_NACK) {
            if crc32_parts(&[&f[..9]]) != read_u32(&f[9..13]) {
                self.on_corrupt(st, src);
                return;
            }
            let seq = read_u64(&f[1..9]);
            if f[0] == KIND_ACK {
                self.on_ack(st, src, seq);
            } else {
                self.on_nack(st, src, seq);
            }
        } else {
            // A flipped bit in the kind byte (or a malformed frame) lands
            // here; the checksum paths above catch everything else.
            self.on_corrupt(st, src);
        }
    }

    /// A frame from `src` failed validation: count it and ask for a
    /// go-back retransmission of whatever we are missing.
    fn on_corrupt(&self, st: &mut State, src: usize) {
        self.inner.stats().record_corruption_detected();
        self.tracer
            .record_event(self.inner.rank(), "corruption_detected", src, 0);
        self.metrics.on_crc_rejection();
        self.nack_gap(st, src);
    }

    fn on_data(&self, st: &mut State, src: usize, seq: u64, tag: u32, payload: Bytes) {
        let expected = st.inc[src].expected;
        if seq == expected {
            st.inc[src].expected += 1;
            st.inc[src].last_nacked = None;
            st.buf_exact
                .entry((src, tag))
                .or_default()
                .push_back(payload.clone());
            st.buf_any.entry(tag).or_default().push_back((src, payload));
            self.send_ctrl(src, KIND_ACK, st.inc[src].expected);
        } else if seq < expected {
            self.inner.stats().record_dup_suppressed();
            self.metrics.on_dup_suppressed();
            self.tracer.record_event(
                self.inner.rank(),
                "dup_suppressed",
                src,
                payload.len() as u64,
            );
            // Re-ACK so the sender stops resending this prefix.
            self.send_ctrl(src, KIND_ACK, expected);
        } else {
            // Sequence gap: something before `seq` was lost or reordered.
            self.nack_gap(st, src);
        }
    }

    /// Sends at most one NACK per distinct gap position.
    fn nack_gap(&self, st: &mut State, src: usize) {
        let expected = st.inc[src].expected;
        if st.inc[src].last_nacked != Some(expected) {
            st.inc[src].last_nacked = Some(expected);
            self.send_ctrl(src, KIND_NACK, expected);
        }
    }

    fn on_ack(&self, st: &mut State, src: usize, acked_up_to: u64) {
        let o = &mut st.out[src];
        let before = o.unacked.len();
        while o.unacked.front().is_some_and(|&(seq, _)| seq < acked_up_to) {
            o.unacked.pop_front();
        }
        if o.unacked.len() < before {
            // Progress: the peer is alive, restart the budget.
            o.strikes = 0;
            o.rto = self.policy.initial_rto;
            o.last_tx = Instant::now();
        }
    }

    fn on_nack(&self, st: &mut State, src: usize, expected_by_peer: u64) {
        {
            let o = &mut st.out[src];
            // A NACK carries the same cumulative information as an ACK.
            while o
                .unacked
                .front()
                .is_some_and(|&(seq, _)| seq < expected_by_peer)
            {
                o.unacked.pop_front();
            }
        }
        let fast_ok = st.out[src].last_fast_retx.elapsed() >= self.policy.initial_rto / 2;
        if !st.out[src].unacked.is_empty() && fast_ok && !st.is_dead(src) {
            st.out[src].last_fast_retx = Instant::now();
            self.retransmit(&mut st.out[src], src);
        }
    }

    fn send_ctrl(&self, dst: usize, kind: u8, seq: u64) {
        let mut f = Vec::with_capacity(CTRL_FRAME);
        f.push(kind);
        f.extend_from_slice(&seq.to_le_bytes());
        let crc = crc32_parts(&[&f[..9]]);
        f.extend_from_slice(&crc.to_le_bytes());
        // Control frames are fire-and-forget; losing one to a dead backend
        // is indistinguishable from losing it on the wire.
        let _ = self.inner.try_send(dst, RELIABLE_TAG, Bytes::from(f));
    }

    fn unreachable(&self, peer: usize) -> NetError {
        NetError::PeerUnreachable {
            peer,
            retries: self.policy.max_retries,
            round: self.round.load(Ordering::Relaxed),
        }
    }

    /// Picks whom to blame when a receive-any exhausts its budget: a peer
    /// we are still retransmitting to if any, else the first other host.
    fn blame(&self, st: &State) -> usize {
        (0..st.out.len())
            .find(|&p| st.is_dead(p) || !st.out[p].unacked.is_empty())
            .unwrap_or_else(|| usize::from(self.inner.rank() == 0))
    }

    fn take_exact(st: &mut State, src: usize, tag: u32) -> Option<Bytes> {
        let queue = st.buf_exact.get_mut(&(src, tag))?;
        let payload = queue.pop_front()?;
        if queue.is_empty() {
            st.buf_exact.remove(&(src, tag));
        }
        if let Some(q) = st.buf_any.get_mut(&tag) {
            if let Some(pos) = q
                .iter()
                .position(|(s, p)| *s == src && same_buffer(p, &payload))
            {
                q.remove(pos);
            }
            if q.is_empty() {
                st.buf_any.remove(&tag);
            }
        }
        Some(payload)
    }

    fn take_any(st: &mut State, tag: u32) -> Option<(usize, Bytes)> {
        let queue = st.buf_any.get_mut(&tag)?;
        let (src, payload) = queue.pop_front()?;
        if queue.is_empty() {
            st.buf_any.remove(&tag);
        }
        if let Some(q) = st.buf_exact.get_mut(&(src, tag)) {
            if let Some(pos) = q.iter().position(|p| same_buffer(p, &payload)) {
                q.remove(pos);
            }
            if q.is_empty() {
                st.buf_exact.remove(&(src, tag));
            }
        }
        Some((src, payload))
    }
}

/// Identity comparison for de-duplicating the twin delivery indexes
/// (clones of one [`Bytes`] share an allocation).
fn same_buffer(a: &Bytes, b: &Bytes) -> bool {
    a.as_ptr() == b.as_ptr() && a.len() == b.len()
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().expect("8-byte slice"))
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().expect("4-byte slice"))
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE) over the concatenation of `parts`.
pub(crate) fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &byte in *part {
            c = CRC_TABLE[((c ^ byte as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

fn encode_data(seq: u64, tag: u32, payload: &[u8]) -> Bytes {
    let mut f = Vec::with_capacity(DATA_HEADER + payload.len());
    f.push(KIND_DATA);
    f.extend_from_slice(&seq.to_le_bytes());
    f.extend_from_slice(&tag.to_le_bytes());
    let crc = crc32_parts(&[&f[..13], payload]);
    f.extend_from_slice(&crc.to_le_bytes());
    f.extend_from_slice(payload);
    Bytes::from(f)
}

impl<T: Transport> Transport for ReliableTransport<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn try_recv_any_timeout(&self, tag: u32, timeout: Duration) -> Result<Envelope, NetError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some((src, payload)) = Self::take_any(&mut st, tag) {
                return Ok(Envelope { src, tag, payload });
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            let wait = self.pump_wait(&st, deadline.saturating_duration_since(now));
            self.pump(&mut st, wait);
        }
    }

    fn try_send(&self, dst: usize, tag: u32, payload: Bytes) -> Result<(), NetError> {
        assert!(
            dst < self.inner.world_size(),
            "destination rank out of range"
        );
        debug_assert!(
            tag < RELIABLE_TAG,
            "tag {tag:#x} collides with the reserved reliability tag space"
        );
        let mut st = self.state.lock();
        if dst == self.inner.rank() {
            // Local delivery: no wire, no sequence numbers needed.
            st.buf_exact
                .entry((dst, tag))
                .or_default()
                .push_back(payload.clone());
            st.buf_any.entry(tag).or_default().push_back((dst, payload));
            return Ok(());
        }
        if let Some(err) = st.dead[dst] {
            return Err(err);
        }
        if let Some(err) = self.inner_failure() {
            return Err(err);
        }
        let deadline = Instant::now() + self.policy.recv_budget;
        while st.out[dst].unacked.len() >= self.policy.window {
            if let Some(err) = self.inner_failure() {
                return Err(err);
            }
            self.check_detector(&mut st);
            if let Some(err) = st.dead[dst] {
                return Err(err);
            }
            if Instant::now() >= deadline {
                let err = self.unreachable(dst);
                self.declare_dead(&mut st, dst, err);
                return Err(err);
            }
            let wait = self.pump_wait(&st, Duration::from_millis(5));
            self.pump(&mut st, wait);
            if let Some(err) = st.dead[dst] {
                return Err(err);
            }
        }
        let o = &mut st.out[dst];
        let seq = o.next_seq;
        o.next_seq += 1;
        let frame = encode_data(seq, tag, &payload);
        if o.unacked.is_empty() {
            // This frame is the new window base; start its timer fresh.
            o.last_tx = Instant::now();
            o.rto = self.policy.initial_rto;
        }
        o.unacked.push_back((seq, frame.clone()));
        if let Err(err) = self.inner.try_send(dst, RELIABLE_TAG, frame) {
            // The backend already knows the peer is gone (broken socket):
            // no amount of retransmission will help, so latch it now.
            if err.peer() == Some(dst) {
                self.declare_dead(&mut st, dst, err);
                return Err(err);
            }
        }
        self.poll(&mut st);
        Ok(())
    }

    fn try_recv(&self, src: usize, tag: u32) -> Result<Bytes, NetError> {
        assert!(src < self.inner.world_size(), "source rank out of range");
        let deadline = Instant::now() + self.policy.recv_budget;
        let mut st = self.state.lock();
        loop {
            if let Some(payload) = Self::take_exact(&mut st, src, tag) {
                return Ok(payload);
            }
            if let Some(err) = st.dead[src] {
                return Err(err);
            }
            if let Some(err) = self.inner_failure() {
                return Err(err);
            }
            self.check_detector(&mut st);
            if let Some(err) = st.dead[src] {
                return Err(err);
            }
            let now = Instant::now();
            if now >= deadline {
                // No delivery progress from `src` within the whole budget:
                // treat it as gone so callers fail fast from here on.
                let err = self.unreachable(src);
                self.declare_dead(&mut st, src, err);
                return Err(err);
            }
            let wait = self.pump_wait(
                &st,
                deadline
                    .saturating_duration_since(now)
                    .min(Duration::from_millis(5)),
            );
            self.pump(&mut st, wait);
        }
    }

    fn try_recv_any(&self, tag: u32) -> Result<Envelope, NetError> {
        let deadline = Instant::now() + self.policy.recv_budget;
        let mut st = self.state.lock();
        loop {
            if let Some((src, payload)) = Self::take_any(&mut st, tag) {
                return Ok(Envelope { src, tag, payload });
            }
            if let Some(err) = (0..st.dead.len()).find_map(|p| st.dead[p]) {
                return Err(err);
            }
            if let Some(err) = self.inner_failure() {
                return Err(err);
            }
            if let Some(err) = self.check_detector(&mut st) {
                return Err(err);
            }
            if Instant::now() >= deadline {
                let blamed = self.blame(&st);
                let err = self.unreachable(blamed);
                self.declare_dead(&mut st, blamed, err);
                return Err(err);
            }
            let wait = self.pump_wait(&st, Duration::from_millis(5));
            self.pump(&mut st, wait);
        }
    }

    fn note_round(&self, round: u64) {
        self.round.store(round, Ordering::Relaxed);
        self.inner.note_round(round);
    }

    fn cancelled(&self) -> Option<NetError> {
        self.inner.cancelled()
    }

    fn stats(&self) -> &NetStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultAction, FaultCounters, FaultPlan, FaultRule, FaultyTransport};
    use crate::transport::MemoryTransport;
    use std::thread;

    type Chaos = ReliableTransport<FaultyTransport<MemoryTransport>>;

    fn chaos_pair(plan: impl Fn(u64) -> FaultPlan) -> (Chaos, Chaos, FaultCounters) {
        let counters = FaultCounters::new();
        let mut eps = MemoryTransport::cluster(2);
        let b = ReliableTransport::over(FaultyTransport::new(
            eps.pop().expect("two endpoints"),
            plan(1),
            counters.clone(),
        ));
        let a = ReliableTransport::over(FaultyTransport::new(
            eps.pop().expect("two endpoints"),
            plan(0),
            counters.clone(),
        ));
        (a, b, counters)
    }

    /// Both directions, several tags, a representative lossy plan: every
    /// message must arrive exactly once, in per-stream order.
    #[test]
    fn lossy_bidirectional_traffic_is_delivered_in_order() {
        let (a, b, counters) = chaos_pair(FaultPlan::lossy);
        const N: u32 = 150;
        let side = |me: &Chaos, peer: usize| {
            for i in 0..N {
                me.try_send(peer, i % 3, Bytes::copy_from_slice(&i.to_le_bytes()))
                    .unwrap();
            }
            // A host that goes quiet stops pumping its retransmission
            // timers, so push the tail out before the receive phase (the
            // cluster runner's Drop does this for real programs).
            me.flush();
            let mut next = [0u32; 3];
            for _ in 0..N {
                // Round-robin the tags to exercise out-of-order matching.
                let tag = next
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &v)| v)
                    .map(|(t, _)| t)
                    .expect("3 tags") as u32;
                let m = me.try_recv(peer, tag).unwrap();
                let v = u32::from_le_bytes(m[..4].try_into().expect("4 bytes"));
                assert_eq!(v % 3, tag, "message on the wrong stream");
                assert_eq!(v, next[tag as usize] * 3 + tag, "stream order broken");
                next[tag as usize] += 1;
            }
        };
        thread::scope(|s| {
            s.spawn(|| side(&a, 1));
            s.spawn(|| side(&b, 0));
        });
        assert!(counters.total() > 0, "the plan must have injected faults");
        let stats = a.stats().clone();
        drop((a, b));
        assert!(
            stats.retransmit_messages() > 0,
            "drops must have forced retransmissions"
        );
    }

    #[test]
    fn duplicates_are_suppressed() {
        let (a, b, counters) = chaos_pair(|seed| FaultPlan::none(seed).with_duplicate_rate(1.0));
        thread::scope(|s| {
            s.spawn(|| {
                for i in 0..40u32 {
                    a.try_send(1, 0, Bytes::copy_from_slice(&i.to_le_bytes()))
                        .unwrap();
                }
                a.flush();
            });
            s.spawn(|| {
                for i in 0..40u32 {
                    assert_eq!(&b.try_recv(0, 0).unwrap()[..4], &i.to_le_bytes());
                }
                // The 41st message must not exist: duplicates were eaten.
                assert!(matches!(
                    b.try_recv_any_timeout(0, Duration::from_millis(50)),
                    Err(NetError::Timeout)
                ));
            });
        });
        assert!(counters.duplicated() > 0);
        assert!(b.stats().dup_suppressed() > 0);
    }

    #[test]
    fn corruption_is_detected_and_repaired() {
        let (a, b, counters) = chaos_pair(|seed| FaultPlan::none(seed).with_corrupt_rate(0.3));
        const N: u32 = 80;
        thread::scope(|s| {
            s.spawn(|| {
                for i in 0..N {
                    a.try_send(1, 5, Bytes::copy_from_slice(&[i as u8; 32]))
                        .unwrap();
                }
                a.flush();
            });
            s.spawn(|| {
                for i in 0..N {
                    let m = b.try_recv(0, 5).unwrap();
                    assert_eq!(&m[..], &[i as u8; 32], "payload must arrive intact");
                }
            });
        });
        assert!(counters.corrupted() > 0, "corruption must have fired");
        assert!(b.stats().corruption_detected() > 0);
    }

    #[test]
    fn delays_cannot_reorder_delivery() {
        let (a, b, _) = chaos_pair(|seed| FaultPlan::none(seed).with_delay_rate(0.8));
        thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100u32 {
                    a.try_send(1, 2, Bytes::copy_from_slice(&i.to_le_bytes()))
                        .unwrap();
                }
                a.flush();
            });
            s.spawn(|| {
                for i in 0..100u32 {
                    assert_eq!(&b.try_recv(0, 2).unwrap()[..4], &i.to_le_bytes());
                }
            });
        });
    }

    #[test]
    fn self_sends_round_trip() {
        let mut eps = MemoryTransport::cluster(1);
        let a = ReliableTransport::over(eps.pop().expect("one endpoint"));
        a.try_send(0, 4, Bytes::from_static(b"loop")).unwrap();
        assert_eq!(&a.try_recv(0, 4).unwrap()[..], b"loop");
        a.try_send(0, 4, Bytes::from_static(b"any")).unwrap();
        assert_eq!(&a.try_recv_any(4).unwrap().payload[..], b"any");
    }

    #[test]
    fn unreachable_peer_is_an_error_not_a_hang() {
        let fast = RetryPolicy {
            initial_rto: Duration::from_micros(200),
            max_retries: 4,
            recv_budget: Duration::from_millis(250),
            ..RetryPolicy::default()
        };
        let counters = FaultCounters::new();
        let mut eps = MemoryTransport::cluster(2);
        let _b = eps.pop().expect("two endpoints");
        // Every frame host 0 sends to host 1 is dropped; host 1 never acks.
        let a = ReliableTransport::with_policy(
            FaultyTransport::new(
                eps.pop().expect("two endpoints"),
                FaultPlan::none(0).with_rule(FaultRule::always(FaultAction::Drop).to_peer(1)),
                counters.clone(),
            ),
            fast,
        );
        a.try_send(1, 0, Bytes::from_static(b"doomed"))
            .expect("first send is asynchronous");
        let started = Instant::now();
        let err = a.try_recv(1, 0).expect_err("peer must be declared dead");
        assert_eq!(err.peer(), Some(1));
        assert!(
            matches!(err, NetError::PeerUnreachable { .. }),
            "budget exhaustion surfaces as PeerUnreachable, got {err:?}"
        );
        assert!(counters.dropped() > 0, "drops must have been injected");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "must fail fast, not hang"
        );
        // Every further operation on the dead peer fails immediately.
        assert!(a.try_send(1, 0, Bytes::new()).is_err());
        assert!(a.try_recv(1, 0).is_err());
    }

    #[test]
    fn window_backpressure_does_not_deadlock() {
        let small = RetryPolicy {
            window: 4,
            ..RetryPolicy::default()
        };
        let mut eps = MemoryTransport::cluster(2);
        let b = ReliableTransport::over(eps.pop().expect("two endpoints"));
        let a = ReliableTransport::with_policy(eps.pop().expect("two endpoints"), small);
        thread::scope(|s| {
            s.spawn(|| {
                for i in 0..64u32 {
                    a.try_send(1, 0, Bytes::copy_from_slice(&i.to_le_bytes()))
                        .unwrap();
                }
                a.flush();
            });
            s.spawn(|| {
                for i in 0..64u32 {
                    assert_eq!(&b.try_recv(0, 0).unwrap()[..4], &i.to_le_bytes());
                }
            });
        });
    }

    #[test]
    fn detector_declares_a_silent_peer_down() {
        use crate::detector::DetectorConfig;
        let cfg = ReliableConfig::default()
            .with_retry(RetryPolicy {
                recv_budget: Duration::from_secs(30),
                ..RetryPolicy::default()
            })
            .with_detector(DetectorConfig::default().with_max_silence(Duration::from_millis(60)));
        let mut eps = MemoryTransport::cluster(2);
        // Host 1 exists but never runs: total silence from it.
        let _b = eps.pop().expect("two endpoints");
        let a = ReliableTransport::with_config(eps.pop().expect("two endpoints"), cfg);
        a.note_round(7);
        let started = Instant::now();
        let err = a
            .try_recv(1, 0)
            .expect_err("detector must declare the silent peer down");
        assert_eq!(
            err,
            NetError::PeerDown { peer: 1, round: 7 },
            "silence surfaces as PeerDown stamped with the noted round"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "detector must fire long before the 30s receive budget"
        );
        // The peer stays dead for every later operation.
        assert_eq!(a.try_send(1, 0, Bytes::new()), Err(err));
        assert_eq!(a.try_recv_any(0), Err(err));
    }

    #[test]
    fn heartbeats_keep_a_quiet_but_alive_peer_undeclared() {
        let cfg = ReliableConfig::detecting();
        let mut eps = MemoryTransport::cluster(2);
        let b = ReliableTransport::with_config(eps.pop().expect("two endpoints"), cfg);
        let a = ReliableTransport::with_config(eps.pop().expect("two endpoints"), cfg);
        let stop = std::sync::atomic::AtomicBool::new(false);
        thread::scope(|s| {
            // Host 1 sends no application traffic for well past max_silence
            // (500ms default) but keeps pumping, so its heartbeats flow.
            s.spawn(|| {
                let deadline = Instant::now() + Duration::from_millis(700);
                while Instant::now() < deadline {
                    let _ = b.try_recv_any_timeout(0, Duration::from_millis(1));
                }
                b.try_send(0, 0, Bytes::from_static(b"alive")).unwrap();
                // Keep heartbeating until host 0 confirms delivery, so the
                // data frame's ACK exchange cannot race our shutdown.
                while !stop.load(Ordering::Acquire) {
                    let _ = b.try_recv_any_timeout(0, Duration::from_millis(1));
                }
            });
            s.spawn(|| {
                let got = a.try_recv(1, 0).expect("peer is alive, just quiet");
                assert_eq!(&got[..], b"alive");
                stop.store(true, Ordering::Release);
            });
        });
    }

    #[test]
    fn beat_frames_do_not_disturb_sequencing() {
        let cfg = ReliableConfig::detecting();
        let mut eps = MemoryTransport::cluster(2);
        let b = ReliableTransport::with_config(eps.pop().expect("two endpoints"), cfg);
        let a = ReliableTransport::with_config(eps.pop().expect("two endpoints"), cfg);
        thread::scope(|s| {
            s.spawn(|| {
                for i in 0..50u32 {
                    a.try_send(1, 0, Bytes::copy_from_slice(&i.to_le_bytes()))
                        .unwrap();
                    // Interleave explicit beats between data frames.
                    let _ = a.try_recv_any_timeout(99, Duration::from_micros(600));
                }
                a.flush();
            });
            s.spawn(|| {
                for i in 0..50u32 {
                    assert_eq!(&b.try_recv(0, 0).unwrap()[..4], &i.to_le_bytes());
                }
            });
        });
        assert_eq!(a.stats().corruption_detected(), 0);
        assert_eq!(b.stats().corruption_detected(), 0);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32_parts(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32_parts(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn frames_survive_a_plain_wire_unchanged() {
        let mut eps = MemoryTransport::cluster(2);
        let b = ReliableTransport::over(eps.pop().expect("two endpoints"));
        let a = ReliableTransport::over(eps.pop().expect("two endpoints"));
        a.try_send(1, 123, Bytes::from_static(b"payload")).unwrap();
        assert_eq!(&b.try_recv(0, 123).unwrap()[..], b"payload");
        // Exactly one data frame and one ack crossed the wire; nothing
        // was retransmitted on a clean network.
        assert_eq!(a.stats().retransmit_messages(), 0);
        assert_eq!(a.stats().corruption_detected(), 0);
    }
}
