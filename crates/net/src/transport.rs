//! Point-to-point message transport.
//!
//! [`Transport`] is the narrow waist the rest of the workspace programs
//! against — the role MPI/LCI play in the paper (Figure 1 shows Gluon
//! sitting on "Network (LCI/MPI)"). The only implementation here is the
//! in-memory [`MemoryTransport`], which simulates a cluster with one OS
//! thread per host; a real MPI binding would slot in behind the same trait.
//!
//! Matching semantics mirror MPI two-sided messaging: a receive names a
//! `(source, tag)` pair, messages between a given pair of hosts with the
//! same tag are delivered in FIFO order, and messages with different tags
//! may be consumed out of order (they are buffered until asked for).

use crate::error::NetError;
use crate::stats::NetStats;
use bytes::Bytes;
use crossbeam::channel::{unbounded_with_capacity, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a cancel-aware blocking receive sleeps between checks of the
/// cluster's [`CancelToken`]. Chosen well below any failure-detector
/// threshold so cancellation latency is never the bottleneck.
const CANCEL_POLL: Duration = Duration::from_millis(1);

/// A shared abort flag for one simulated cluster.
///
/// Every endpoint created by [`MemoryTransport::cluster`] holds a clone of
/// the same token. When any host fails with a typed error, tripping the
/// token makes every sibling's blocking receive return
/// [`NetError::Cancelled`] promptly instead of waiting for traffic that
/// will never come.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    tripped: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token; every clone observes it. Idempotent.
    pub fn trip(&self) {
        self.tripped.store(true, Ordering::Release);
    }

    /// Whether any clone has been tripped.
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }
}

/// A received message: sending rank plus payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Rank of the sending host.
    pub src: usize,
    /// Multiplexing tag chosen by the sender.
    pub tag: u32,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Two-sided point-to-point messaging between the hosts of a cluster.
///
/// All methods may be called concurrently from multiple threads of one host.
///
/// # Fallibility is the primary contract
///
/// Real backends fail: a socket peer dies mid-round, a retransmission
/// budget runs out, a sibling host trips the cluster's cancellation token.
/// The `try_*` methods are therefore the *required* surface every
/// implementation provides, and every runtime call site — the Gluon sync
/// paths, the collectives, the reliability layer — programs against them.
/// The infallible `send`/`recv`/`recv_any` are deprecated default-provided
/// wrappers that panic on any [`NetError`]; they exist only for quick
/// in-memory experiments where failure genuinely cannot happen.
pub trait Transport: Send + Sync {
    /// This host's rank in `0..world_size()`.
    fn rank(&self) -> usize;

    /// Number of hosts in the cluster.
    fn world_size(&self) -> usize;

    /// Sends `payload` to host `dst` with multiplexing tag `tag`.
    ///
    /// Sends are asynchronous and never block for peer progress (they may
    /// copy into a local queue). Sending to self is allowed (the message is
    /// delivered through the normal path).
    ///
    /// # Errors
    ///
    /// A typed [`NetError`] when the backend knows the send cannot succeed:
    /// the reliability layer reports a peer that exhausted its
    /// retransmission budget, a socket backend reports a broken pipe.
    fn try_send(&self, dst: usize, tag: u32, payload: Bytes) -> Result<(), NetError>;

    /// Blocks until a message from `src` with tag `tag` arrives and returns
    /// its payload.
    ///
    /// # Errors
    ///
    /// A typed [`NetError`] when the wait cannot complete: the source peer
    /// is down, the cluster was cancelled, or this host was crashed by
    /// fault injection.
    fn try_recv(&self, src: usize, tag: u32) -> Result<Bytes, NetError>;

    /// Blocks until a message with tag `tag` arrives from *any* host.
    ///
    /// # Errors
    ///
    /// As [`Transport::try_recv`].
    fn try_recv_any(&self, tag: u32) -> Result<Envelope, NetError>;

    /// Waits up to `timeout` for a message with tag `tag` from any host.
    ///
    /// Expiry returns the typed [`NetError::Timeout`] — uniformly across
    /// backends, never a sentinel value — which callers treat as observed
    /// silence, not failure. A zero timeout polls: already-buffered
    /// messages are still returned. This is the primitive that lets a
    /// reliability layer interleave retransmission timers with receiving,
    /// so every implementation must provide it.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] on expiry; other [`NetError`]s as
    /// [`Transport::try_recv`].
    fn try_recv_any_timeout(&self, tag: u32, timeout: Duration) -> Result<Envelope, NetError>;

    /// Infallible [`Transport::try_send`]; panics on any transport error.
    ///
    /// # Panics
    ///
    /// Panics if the underlying `try_send` reports a [`NetError`] — only
    /// safe on in-memory backends, where sends cannot fail.
    #[deprecated(note = "program against try_send; this wrapper panics on transport errors")]
    fn send(&self, dst: usize, tag: u32, payload: Bytes) {
        if let Err(e) = self.try_send(dst, tag, payload) {
            panic!("transport send to {dst} failed: {e}");
        }
    }

    /// Infallible [`Transport::try_recv`]; panics on any transport error.
    ///
    /// # Panics
    ///
    /// Panics if the underlying `try_recv` reports a [`NetError`].
    #[deprecated(note = "program against try_recv; this wrapper panics on transport errors")]
    fn recv(&self, src: usize, tag: u32) -> Bytes {
        self.try_recv(src, tag)
            .unwrap_or_else(|e| panic!("transport recv from {src} failed: {e}"))
    }

    /// Infallible [`Transport::try_recv_any`]; panics on any transport
    /// error.
    ///
    /// # Panics
    ///
    /// Panics if the underlying `try_recv_any` reports a [`NetError`].
    #[deprecated(note = "program against try_recv_any; this wrapper panics on transport errors")]
    fn recv_any(&self, tag: u32) -> Envelope {
        self.try_recv_any(tag)
            .unwrap_or_else(|e| panic!("transport recv_any failed: {e}"))
    }

    /// Sentinel-style [`Transport::try_recv_any_timeout`]: `None` on
    /// expiry, panicking on real transport errors.
    ///
    /// # Panics
    ///
    /// Panics on any [`NetError`] other than [`NetError::Timeout`].
    #[deprecated(
        note = "program against try_recv_any_timeout; expiry is the typed NetError::Timeout"
    )]
    fn recv_any_timeout(&self, tag: u32, timeout: Duration) -> Option<Envelope> {
        match self.try_recv_any_timeout(tag, timeout) {
            Ok(env) => Some(env),
            Err(NetError::Timeout) => None,
            Err(e) => panic!("transport recv_any_timeout failed: {e}"),
        }
    }

    /// Reports the sync-phase index the application has reached.
    ///
    /// The Gluon runtime ticks this once per sync phase. Wrappers must
    /// forward it inward; implementations use it to stamp errors with the
    /// round they happened in ([`crate::ReliableTransport`]) and to fire
    /// round-triggered fault injection ([`crate::FaultyTransport`]). The
    /// default is a no-op.
    fn note_round(&self, round: u64) {
        let _ = round;
    }

    /// Returns the terminal error this endpoint should abort with, if any.
    ///
    /// Checked inside fallible blocking loops: a tripped [`CancelToken`]
    /// yields [`NetError::Cancelled`], an injected crash yields
    /// [`NetError::HostCrashed`]. Wrappers must forward inward. The default
    /// (`None`) means "keep blocking".
    fn cancelled(&self) -> Option<NetError> {
        None
    }

    /// Communication counters for the whole cluster.
    fn stats(&self) -> &NetStats;
}

type Packet = (usize, u32, Bytes);

/// One host's endpoint of the in-memory cluster transport.
///
/// Created in bulk by [`MemoryTransport::cluster`]; every endpoint can reach
/// every other through unbounded FIFO channels.
///
/// # Examples
///
/// ```
/// use gluon_net::{MemoryTransport, Transport};
/// use bytes::Bytes;
///
/// let mut eps = MemoryTransport::cluster(2);
/// let b = eps.pop().expect("endpoint for host 1");
/// let a = eps.pop().expect("endpoint for host 0");
/// a.try_send(1, 7, Bytes::from_static(b"hi")).unwrap();
/// assert_eq!(&b.try_recv(0, 7).unwrap()[..], b"hi");
/// ```
#[derive(Debug)]
pub struct MemoryTransport {
    rank: usize,
    world_size: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    /// Messages that arrived but did not match the pending `recv`.
    stash: Mutex<Stash<(usize, u32), Bytes>>,
    /// Stash for `recv_any`, keyed by tag only.
    stash_any: Mutex<Stash<u32, (usize, Bytes)>>,
    stats: NetStats,
    /// Shared abort flag; one token per cluster.
    cancel: CancelToken,
}

/// One stash index plus a free-list of emptied queues.
///
/// Sync tags cycle through a large window (and collective tags through
/// epochs), so map keys keep appearing and disappearing far past any
/// warm-up. Removing an emptied queue keeps the map small, but dropping
/// it would allocate a fresh `VecDeque` ring for every future message;
/// parking the capacity-retaining husk on `free` and handing it back out
/// on the next insert keeps steady-state filing allocation-free. Both
/// the map's table and a stock of queues are reserved at construction:
/// the number of *simultaneously* pending keys depends on how far peers
/// drift apart, which peaks long after any warm-up, so a first-touch
/// high-water must not cost an allocation mid-run.
#[derive(Debug)]
pub(crate) struct Stash<K, T> {
    pub(crate) map: HashMap<K, VecDeque<T>>,
    free: Vec<VecDeque<T>>,
}

/// Map-table slots reserved per stash (distinct simultaneously pending
/// `(src, tag)` keys; drift bounds this at a few per peer).
const STASH_KEY_RESERVE: usize = 64;
/// Pre-stocked queues on the free-list, each with a few message slots.
const STASH_QUEUE_RESERVE: usize = 32;
/// Message slots per pre-stocked queue (per-key queues are nearly always
/// length 1: sync tags encode the round, so a key collects one message).
const STASH_QUEUE_DEPTH: usize = 8;

impl<K: Eq + std::hash::Hash, T> Stash<K, T> {
    pub(crate) fn new() -> Self {
        let mut free = Vec::with_capacity(STASH_QUEUE_RESERVE);
        free.resize_with(STASH_QUEUE_RESERVE, || {
            VecDeque::with_capacity(STASH_QUEUE_DEPTH)
        });
        Stash {
            map: HashMap::with_capacity(STASH_KEY_RESERVE),
            free,
        }
    }

    /// Appends `item` to `key`'s queue, reviving a recycled queue (or, on
    /// a cold pool, allocating one) if the key is new.
    pub(crate) fn push(&mut self, key: K, item: T) {
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push_back(item),
            std::collections::hash_map::Entry::Vacant(e) => {
                let mut q = self.free.pop().unwrap_or_default();
                q.push_back(item);
                e.insert(q);
            }
        }
    }

    /// Drops `key`'s (empty) queue from the map, parking its storage on
    /// the free-list.
    pub(crate) fn retire(&mut self, key: &K) {
        if let Some(q) = self.map.remove(key) {
            debug_assert!(q.is_empty(), "retired a non-empty stash queue");
            self.free.push(q);
        }
    }
}

impl MemoryTransport {
    /// Creates the endpoints of a fully connected in-memory cluster of
    /// `world_size` hosts, returned in rank order.
    ///
    /// # Panics
    ///
    /// Panics if `world_size` is zero.
    pub fn cluster(world_size: usize) -> Vec<MemoryTransport> {
        Self::cluster_with_stats(world_size, NetStats::new(world_size))
    }

    /// As [`MemoryTransport::cluster`], with caller-provided counters (e.g.
    /// history-recording ones).
    ///
    /// # Panics
    ///
    /// Panics if `world_size` is zero or disagrees with `stats`.
    pub fn cluster_with_stats(world_size: usize, stats: NetStats) -> Vec<MemoryTransport> {
        assert!(world_size > 0, "cluster needs at least one host");
        assert_eq!(
            stats.world_size(),
            world_size,
            "stats sized for a different cluster"
        );
        let mut senders = Vec::with_capacity(world_size);
        let mut receivers = Vec::with_capacity(world_size);
        for _ in 0..world_size {
            // Reserved up front: a host's inbound backlog (packets sent but
            // not yet pumped) peaks when a receiver lags its peers, which
            // happens mid-run — growing the ring then would allocate in
            // what must be an allocation-free steady state.
            let (tx, rx) = unbounded_with_capacity::<Packet>(1024);
            senders.push(tx);
            receivers.push(rx);
        }
        let cancel = CancelToken::new();
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| MemoryTransport {
                rank,
                world_size,
                senders: senders.clone(),
                receiver,
                stash: Mutex::new(Stash::new()),
                stash_any: Mutex::new(Stash::new()),
                stats: stats.clone(),
                cancel: cancel.clone(),
            })
            .collect()
    }

    /// A clone of this cluster's shared [`CancelToken`]. Every endpoint of
    /// one [`MemoryTransport::cluster`] call returns clones of the same
    /// token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Pulls one packet from the wire into the appropriate stash, waking up
    /// periodically to check the cluster's [`CancelToken`] instead of
    /// blocking indefinitely, so a failed sibling host can abort this one
    /// promptly. A disconnected channel (every other endpoint dropped) is
    /// reported as [`NetError::Cancelled`] too: nothing can ever arrive.
    fn pump_cancellable(&self) -> Result<(), NetError> {
        loop {
            // Drain without blocking first so an already-delivered packet
            // is never delayed by the cancellation check.
            if let Ok(packet) = self.receiver.try_recv() {
                self.file(packet);
                return Ok(());
            }
            if let Some(err) = self.cancelled() {
                return Err(err);
            }
            match self.receiver.recv_timeout(CANCEL_POLL) {
                Ok(packet) => {
                    self.file(packet);
                    return Ok(());
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Cancelled);
                }
            }
        }
    }

    /// Files one wire packet into the twin stash indexes. A packet serves
    /// either a `(src, tag)` recv or a tag-only recv_any; whichever recv
    /// runs first takes it, removing it from the twin index.
    fn file(&self, (src, tag, payload): Packet) {
        self.stash.lock().push((src, tag), payload.clone());
        self.stash_any.lock().push(tag, (src, payload));
    }

    fn take_exact(&self, src: usize, tag: u32) -> Option<Bytes> {
        let mut stash = self.stash.lock();
        let queue = stash.map.get_mut(&(src, tag))?;
        let payload = queue.pop_front()?;
        if queue.is_empty() {
            stash.retire(&(src, tag));
        }
        // Remove the twin entry from the any-index.
        let mut any = self.stash_any.lock();
        if let Some(q) = any.map.get_mut(&tag) {
            if let Some(pos) = q
                .iter()
                .position(|(s, p)| *s == src && Bytes::ptr_eq_len(p, &payload))
            {
                q.remove(pos);
            }
            if q.is_empty() {
                any.retire(&tag);
            }
        }
        Some(payload)
    }

    fn take_any(&self, tag: u32) -> Option<(usize, Bytes)> {
        let mut any = self.stash_any.lock();
        let queue = any.map.get_mut(&tag)?;
        let (src, payload) = queue.pop_front()?;
        if queue.is_empty() {
            any.retire(&tag);
        }
        drop(any);
        let mut stash = self.stash.lock();
        if let Some(q) = stash.map.get_mut(&(src, tag)) {
            if let Some(pos) = q.iter().position(|p| Bytes::ptr_eq_len(p, &payload)) {
                q.remove(pos);
            }
            if q.is_empty() {
                stash.retire(&(src, tag));
            }
        }
        Some((src, payload))
    }
}

/// Identity comparison helper for de-duplicating the two stash indexes.
pub(crate) trait PtrEqLen {
    fn ptr_eq_len(a: &Bytes, b: &Bytes) -> bool;
}

impl PtrEqLen for Bytes {
    /// True when `a` and `b` are the same buffer (pointer and length).
    fn ptr_eq_len(a: &Bytes, b: &Bytes) -> bool {
        a.as_ptr() == b.as_ptr() && a.len() == b.len()
    }
}

impl Transport for MemoryTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world_size
    }

    fn try_send(&self, dst: usize, tag: u32, payload: Bytes) -> Result<(), NetError> {
        assert!(dst < self.world_size, "destination rank out of range");
        self.stats
            .record_send(self.rank, dst, tag, payload.len() as u64);
        // A send to a departed endpoint vanishes silently, like a packet to
        // a crashed host on a real network. This matters during teardown: a
        // reliability layer may still be retransmitting to a peer whose
        // thread already finished and dropped its endpoint.
        let _ = self.senders[dst].send((self.rank, tag, payload));
        Ok(())
    }

    /// Cancel-aware [`Transport::try_recv`]: blocks until a matching
    /// message arrives or the cluster's [`CancelToken`] trips.
    fn try_recv(&self, src: usize, tag: u32) -> Result<Bytes, NetError> {
        assert!(src < self.world_size, "source rank out of range");
        loop {
            if let Some(payload) = self.take_exact(src, tag) {
                return Ok(payload);
            }
            self.pump_cancellable()?;
        }
    }

    /// Cancel-aware [`Transport::try_recv_any`].
    fn try_recv_any(&self, tag: u32) -> Result<Envelope, NetError> {
        loop {
            if let Some((src, payload)) = self.take_any(tag) {
                return Ok(Envelope { src, tag, payload });
            }
            self.pump_cancellable()?;
        }
    }

    fn cancelled(&self) -> Option<NetError> {
        self.cancel.is_tripped().then_some(NetError::Cancelled)
    }

    fn try_recv_any_timeout(&self, tag: u32, timeout: Duration) -> Result<Envelope, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            // Drain everything already on the wire first, so that a
            // zero-timeout call still observes packets that have arrived —
            // the reliability layer polls this way to collect ACKs without
            // waiting.
            while let Ok(packet) = self.receiver.try_recv() {
                self.file(packet);
            }
            if let Some((src, payload)) = self.take_any(tag) {
                return Ok(Envelope { src, tag, payload });
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            match self.receiver.recv_timeout(deadline - now) {
                Ok(packet) => self.file(packet),
                // Timed out, or every peer endpoint is gone: either way
                // nothing more can arrive within the deadline, which is
                // silence, not failure.
                Err(_) => return Err(NetError::Timeout),
            }
        }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn send(t: &MemoryTransport, dst: usize, tag: u32, payload: &'static [u8]) {
        t.try_send(dst, tag, Bytes::from_static(payload))
            .expect("memory send cannot fail");
    }

    fn recv(t: &MemoryTransport, src: usize, tag: u32) -> Bytes {
        t.try_recv(src, tag).expect("receive failed")
    }

    #[test]
    fn point_to_point_delivery() {
        let mut eps = MemoryTransport::cluster(2);
        let b = eps.pop().expect("two endpoints");
        let a = eps.pop().expect("two endpoints");
        send(&a, 1, 1, b"x");
        assert_eq!(&recv(&b, 0, 1)[..], b"x");
    }

    #[test]
    fn fifo_per_tag() {
        let mut eps = MemoryTransport::cluster(2);
        let b = eps.pop().expect("two endpoints");
        let a = eps.pop().expect("two endpoints");
        send(&a, 1, 1, b"first");
        send(&a, 1, 1, b"second");
        assert_eq!(&recv(&b, 0, 1)[..], b"first");
        assert_eq!(&recv(&b, 0, 1)[..], b"second");
    }

    #[test]
    fn different_tags_consumed_out_of_order() {
        let mut eps = MemoryTransport::cluster(2);
        let b = eps.pop().expect("two endpoints");
        let a = eps.pop().expect("two endpoints");
        send(&a, 1, 1, b"one");
        send(&a, 1, 2, b"two");
        // Ask for tag 2 first; tag 1 must be stashed, not lost.
        assert_eq!(&recv(&b, 0, 2)[..], b"two");
        assert_eq!(&recv(&b, 0, 1)[..], b"one");
    }

    #[test]
    fn recv_any_takes_from_either_source() {
        let mut eps = MemoryTransport::cluster(3);
        let c = eps.pop().expect("three endpoints");
        let b = eps.pop().expect("three endpoints");
        let a = eps.pop().expect("three endpoints");
        send(&a, 2, 5, b"from a");
        send(&b, 2, 5, b"from b");
        let mut seen = vec![
            c.try_recv_any(5).expect("first").src,
            c.try_recv_any(5).expect("second").src,
        ];
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn recv_any_and_recv_share_one_message_pool() {
        let mut eps = MemoryTransport::cluster(2);
        let b = eps.pop().expect("two endpoints");
        let a = eps.pop().expect("two endpoints");
        send(&a, 1, 3, b"only");
        let env = b.try_recv_any(3).expect("delivered");
        assert_eq!(env.src, 0);
        // The message must not be receivable twice.
        send(&a, 1, 3, b"next");
        assert_eq!(&recv(&b, 0, 3)[..], b"next");
    }

    #[test]
    fn self_send_works() {
        let mut eps = MemoryTransport::cluster(1);
        let a = eps.pop().expect("one endpoint");
        send(&a, 0, 0, b"me");
        assert_eq!(&recv(&a, 0, 0)[..], b"me");
    }

    #[test]
    fn cross_thread_ping_pong() {
        let mut eps = MemoryTransport::cluster(2);
        let b = eps.pop().expect("two endpoints");
        let a = eps.pop().expect("two endpoints");
        thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100u32 {
                    a.try_send(1, 0, Bytes::copy_from_slice(&i.to_le_bytes()))
                        .expect("send");
                    let echo = recv(&a, 1, 1);
                    assert_eq!(&echo[..], &i.to_le_bytes());
                }
            });
            s.spawn(|| {
                for _ in 0..100 {
                    let m = recv(&b, 0, 0);
                    b.try_send(0, 1, m).expect("send");
                }
            });
        });
    }

    #[test]
    fn stats_count_payload_bytes() {
        let mut eps = MemoryTransport::cluster(2);
        let _b = eps.pop().expect("two endpoints");
        let a = eps.pop().expect("two endpoints");
        send(&a, 1, 0, b"12345");
        assert_eq!(a.stats().total_bytes(), 5);
        assert_eq!(a.stats().total_messages(), 1);
    }

    #[test]
    fn timeout_expiry_is_typed() {
        let eps = MemoryTransport::cluster(2);
        assert_eq!(
            eps[0]
                .try_recv_any_timeout(9, Duration::from_millis(1))
                .unwrap_err(),
            NetError::Timeout
        );
    }

    /// The deprecated infallible wrappers stay behaviorally intact for
    /// in-memory experiments: they delegate to the fallible methods.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_fallible_forms() {
        let mut eps = MemoryTransport::cluster(2);
        let b = eps.pop().expect("two endpoints");
        let a = eps.pop().expect("two endpoints");
        a.send(1, 1, Bytes::from_static(b"wrapped"));
        assert_eq!(&b.recv(0, 1)[..], b"wrapped");
        a.send(1, 2, Bytes::from_static(b"any"));
        assert_eq!(b.recv_any(2).src, 0);
        assert!(b.recv_any_timeout(3, Duration::from_millis(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_bad_rank_panics() {
        let eps = MemoryTransport::cluster(1);
        let _ = eps[0].try_send(3, 0, Bytes::new());
    }
}
