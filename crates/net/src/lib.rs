//! In-memory message transport and collectives for the Gluon workspace.
//!
//! This crate stands in for MPI/LCI (the "Network" box of the paper's
//! Figure 1): it provides two-sided point-to-point messaging
//! ([`MemoryTransport`]), the collectives Gluon needs ([`Communicator`]),
//! an SPMD launcher ([`run_cluster`]) that simulates a cluster with one OS
//! thread per host, exact per-host-pair traffic counters ([`NetStats`]),
//! and an α–β [`CostModel`] that projects wall-clock communication time for
//! a real interconnect from the measured traffic.
//!
//! # Examples
//!
//! ```
//! use gluon_net::{run_cluster, Communicator, Transport};
//! use bytes::Bytes;
//!
//! let echoes = run_cluster(2, |ep| {
//!     let comm = Communicator::new(ep);
//!     let all = comm.all_gather(Bytes::copy_from_slice(&[ep.rank() as u8]));
//!     all.iter().map(|b| b[0]).collect::<Vec<_>>()
//! });
//! assert_eq!(echoes[0], vec![0, 1]);
//! assert_eq!(echoes[1], vec![0, 1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
mod cluster;
mod comm;
mod cost;
mod detector;
mod error;
mod fault;
mod jitter;
mod reliable;
mod socket;
mod stats;
mod transport;

pub use bootstrap::{join, Rendezvous, SocketFactory, SocketKind};
pub use cluster::{run_cluster, run_cluster_fallible, run_cluster_with_stats, run_cluster_wrapped};
pub use comm::{assert_user_tag, Communicator, COLLECTIVE_TAG_BASE, MAX_USER_TAG};
pub use cost::CostModel;
pub use detector::DetectorConfig;
pub use error::NetError;
pub use fault::{CrashRule, FaultAction, FaultCounters, FaultPlan, FaultRule, FaultyTransport};
pub use jitter::JitterTransport;
pub use reliable::{ReliableConfig, ReliableTransport, RetryPolicy, RELIABLE_TAG};
pub use socket::SocketTransport;
pub use stats::{NetStats, SendRecord, StatsDelta, StatsSnapshot, DEFAULT_HISTORY_CAPACITY};
pub use transport::{CancelToken, Envelope, MemoryTransport, Transport};
