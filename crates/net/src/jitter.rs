//! Failure injection: a transport wrapper that delays and reorders sends.
//!
//! Real interconnects deliver messages on different (peer, tag) streams in
//! unpredictable relative order; the in-memory transport is *too* polite.
//! [`JitterTransport`] restores the adversity deterministically: each send
//! may be held back and released later, out of order with respect to other
//! streams, while per-`(destination, tag)` FIFO order — the only ordering
//! the stack is entitled to — is preserved. Held messages are flushed
//! before the endpoint blocks in a receive, so the wrapper can never
//! deadlock a BSP program that the plain transport wouldn't.

use crate::stats::NetStats;
use crate::transport::{Envelope, Transport};
use bytes::Bytes;
use parking_lot::Mutex;

/// Deterministic jitter wrapper around any [`Transport`].
///
/// # Examples
///
/// ```
/// use gluon_net::{JitterTransport, MemoryTransport, Transport};
/// use bytes::Bytes;
///
/// let mut eps = MemoryTransport::cluster(2);
/// let b = eps.pop().unwrap();
/// let a = JitterTransport::new(eps.pop().unwrap(), 7);
/// a.try_send(1, 1, Bytes::from_static(b"first")).unwrap();
/// a.try_send(1, 1, Bytes::from_static(b"second")).unwrap();
/// a.flush(); // or any recv on `a` would flush
/// assert_eq!(&b.try_recv(0, 1).unwrap()[..], b"first");
/// assert_eq!(&b.try_recv(0, 1).unwrap()[..], b"second");
/// ```
#[derive(Debug)]
pub struct JitterTransport<T: Transport> {
    inner: T,
    held: Mutex<Vec<(usize, u32, Bytes)>>,
    rng: Mutex<u64>,
    /// Maximum number of messages held back at once.
    max_held: usize,
}

/// Anything still held is released when the wrapper goes away, so a host
/// whose *last* action was a (held) send cannot starve its peers.
impl<T: Transport> Drop for JitterTransport<T> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl<T: Transport> JitterTransport<T> {
    /// Wraps `inner`, seeding the deterministic delay decisions.
    pub fn new(inner: T, seed: u64) -> JitterTransport<T> {
        JitterTransport {
            inner,
            held: Mutex::new(Vec::new()),
            rng: Mutex::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            max_held: 8,
        }
    }

    fn next_rand(&self) -> u64 {
        let mut state = self.rng.lock();
        // xorshift64*: cheap, deterministic, good enough for jitter.
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// Releases every held message (in a shuffled cross-stream order that
    /// still respects per-stream FIFO, since at most one message per
    /// `(dst, tag)` stream is ever held). Send errors are swallowed: a
    /// held message for a peer that has since failed vanishes, exactly
    /// like a packet to a crashed host.
    pub fn flush(&self) {
        let mut held = std::mem::take(&mut *self.held.lock());
        while !held.is_empty() {
            let pick = (self.next_rand() % held.len() as u64) as usize;
            let (dst, tag, payload) = held.swap_remove(pick);
            let _ = self.inner.try_send(dst, tag, payload);
        }
    }
}

impl<T: Transport> Transport for JitterTransport<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn try_send(&self, dst: usize, tag: u32, payload: Bytes) -> Result<(), crate::error::NetError> {
        let mut held = self.held.lock();
        // FIFO guard: if a message for this stream is already held, release
        // it (and everything queued before the decision point stays
        // randomized across *other* streams only).
        if let Some(pos) = held.iter().position(|&(d, t, _)| d == dst && t == tag) {
            let (d, t, p) = held.remove(pos);
            self.inner.try_send(d, t, p)?;
        }
        let delay = self.next_rand().is_multiple_of(2) && held.len() < self.max_held;
        if delay {
            held.push((dst, tag, payload));
            return Ok(());
        }
        drop(held);
        // Not delaying this one: randomly release one straggler too.
        self.inner.try_send(dst, tag, payload)?;
        let mut held = self.held.lock();
        if !held.is_empty() && self.next_rand().is_multiple_of(2) {
            let pick = (self.next_rand() % held.len() as u64) as usize;
            let (d, t, p) = held.swap_remove(pick);
            drop(held);
            self.inner.try_send(d, t, p)?;
        }
        Ok(())
    }

    fn try_recv(&self, src: usize, tag: u32) -> Result<Bytes, crate::error::NetError> {
        self.flush();
        self.inner.try_recv(src, tag)
    }

    fn try_recv_any(&self, tag: u32) -> Result<Envelope, crate::error::NetError> {
        self.flush();
        self.inner.try_recv_any(tag)
    }

    fn try_recv_any_timeout(
        &self,
        tag: u32,
        timeout: std::time::Duration,
    ) -> Result<Envelope, crate::error::NetError> {
        self.flush();
        self.inner.try_recv_any_timeout(tag, timeout)
    }

    fn note_round(&self, round: u64) {
        self.inner.note_round(round);
    }

    fn cancelled(&self) -> Option<crate::error::NetError> {
        self.inner.cancelled()
    }

    fn stats(&self) -> &NetStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::MemoryTransport;
    use std::thread;

    #[test]
    fn all_messages_are_eventually_delivered() {
        let mut eps = MemoryTransport::cluster(2);
        let b = eps.pop().expect("two endpoints");
        let a = JitterTransport::new(eps.pop().expect("two endpoints"), 3);
        for i in 0..50u32 {
            a.try_send(1, i % 5, Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        a.flush();
        let mut got = Vec::new();
        for tag in 0..5u32 {
            for _ in 0..10 {
                let m = b.try_recv(0, tag).unwrap();
                got.push(u32::from_le_bytes(m[..4].try_into().unwrap()));
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn per_stream_fifo_is_preserved() {
        let mut eps = MemoryTransport::cluster(2);
        let b = eps.pop().expect("two endpoints");
        let a = JitterTransport::new(eps.pop().expect("two endpoints"), 99);
        for i in 0..100u32 {
            a.try_send(1, 7, Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        a.flush();
        for i in 0..100u32 {
            let m = b.try_recv(0, 7).unwrap();
            assert_eq!(u32::from_le_bytes(m[..4].try_into().unwrap()), i);
        }
    }

    #[test]
    fn recv_flushes_pending_sends() {
        // A BSP ping-pong across two jittered endpoints must not deadlock:
        // entering recv releases anything held.
        let mut eps = MemoryTransport::cluster(2);
        let b = JitterTransport::new(eps.pop().expect("two endpoints"), 5);
        let a = JitterTransport::new(eps.pop().expect("two endpoints"), 4);
        thread::scope(|s| {
            s.spawn(|| {
                for i in 0..200u32 {
                    a.try_send(1, 0, Bytes::copy_from_slice(&i.to_le_bytes()))
                        .unwrap();
                    let echo = a.try_recv(1, 1).unwrap();
                    assert_eq!(&echo[..4], &i.to_le_bytes());
                }
            });
            s.spawn(|| {
                for _ in 0..200 {
                    let m = b.try_recv(0, 0).unwrap();
                    b.try_send(0, 1, m).unwrap();
                }
                // The final echo may be held; release it before the peer's
                // last recv is abandoned (a real program's shutdown barrier
                // or the Drop impl does this).
                b.flush();
            });
        });
    }

    #[test]
    fn jitter_is_deterministic_in_seed() {
        // Observe the *hold* decisions through the per-pair byte counters:
        // how many bytes were actually on the wire right after each send.
        let trace = |seed: u64| -> Vec<u64> {
            let mut eps = MemoryTransport::cluster(2);
            let _b = eps.pop().expect("two endpoints");
            let a = JitterTransport::new(eps.pop().expect("two endpoints"), seed);
            (0..12u32)
                .map(|i| {
                    a.try_send(1, i, Bytes::from_static(b"x")).unwrap();
                    a.stats().total_bytes()
                })
                .collect()
        };
        assert_eq!(trace(1), trace(1));
        assert_eq!(trace(2), trace(2));
        assert_ne!(trace(1), trace(2), "different seeds should differ");
    }
}
