//! Transport-level errors.
//!
//! The in-memory [`crate::MemoryTransport`] cannot fail, but the reliability
//! layer ([`crate::ReliableTransport`]) can exhaust its retransmission
//! budget against a lossy or dead peer, its failure detector can declare a
//! silent peer down, a [`crate::FaultPlan`] crash rule can kill the local
//! endpoint, and a sibling host can trip the cluster's cancellation token.
//! All of these surface as a [`NetError`] through the `try_*` methods of
//! [`crate::Transport`] so that callers — ultimately the Gluon sync paths —
//! can degrade gracefully instead of blocking forever or panicking.
//!
//! The `round` carried by the peer-failure variants is the last sync-phase
//! index the local host reported through [`crate::Transport::note_round`]
//! (0 if the failure happened before the first sync), which lets a
//! supervisor decide which checkpoint epoch to roll back to.

use std::fmt;

/// Errors surfaced by fallible transport operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetError {
    /// A peer did not acknowledge traffic within the retry budget, or a
    /// receive waited longer than the configured budget with no progress.
    /// The peer is presumed crashed, partitioned away, or stalled.
    PeerUnreachable {
        /// Rank of the unresponsive peer.
        peer: usize,
        /// Retransmission attempts (or receive budget, as retries) spent
        /// before giving up.
        retries: u32,
        /// Sync-phase index the local host was in when it gave up.
        round: u64,
    },
    /// The failure detector declared a peer dead: no frame (data, control,
    /// or heartbeat) arrived from it for longer than the configured
    /// suspicion threshold.
    PeerDown {
        /// Rank of the silent peer.
        peer: usize,
        /// Sync-phase index the local host was in when the detector fired.
        round: u64,
    },
    /// An injected [`crate::CrashRule`] killed *this* host's endpoint: the
    /// host is simulating its own death and must unwind without notifying
    /// its peers (they learn of it through their failure detectors).
    HostCrashed {
        /// Rank of the crashed host (the local rank).
        host: usize,
        /// Sync-phase index at which the crash rule fired.
        round: u64,
    },
    /// A sibling host tripped the cluster's cancellation token after
    /// failing, so this host aborted its blocking operation instead of
    /// waiting for traffic that will never come.
    Cancelled,
    /// A bounded receive ([`crate::Transport::try_recv_any_timeout`])
    /// expired with no matching message. Unlike every other variant this is
    /// not a failure: it is the typed replacement for the old `None`
    /// sentinel, and callers such as [`crate::ReliableTransport`]'s pump
    /// treat it as observed silence (feeding the failure detector's
    /// accounting) before retrying.
    Timeout,
}

impl NetError {
    /// The remote peer this error blames, if it blames one.
    ///
    /// `HostCrashed` (a local event) and `Cancelled` (a cluster-wide event)
    /// name no remote peer.
    pub fn peer(&self) -> Option<usize> {
        match self {
            NetError::PeerUnreachable { peer, .. } | NetError::PeerDown { peer, .. } => Some(*peer),
            NetError::HostCrashed { .. } | NetError::Cancelled | NetError::Timeout => None,
        }
    }

    /// The sync-phase index attached to the error, if any.
    pub fn round(&self) -> Option<u64> {
        match self {
            NetError::PeerUnreachable { round, .. }
            | NetError::PeerDown { round, .. }
            | NetError::HostCrashed { round, .. } => Some(*round),
            NetError::Cancelled | NetError::Timeout => None,
        }
    }

    /// True for the variants that indicate a *remote host* failed (the
    /// signals a supervisor treats as recoverable by rollback-restart).
    pub fn is_peer_failure(&self) -> bool {
        matches!(
            self,
            NetError::PeerUnreachable { .. }
                | NetError::PeerDown { .. }
                | NetError::HostCrashed { .. }
        )
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::PeerUnreachable {
                peer,
                retries,
                round,
            } => write!(
                f,
                "peer {peer} unreachable after {retries} retransmission attempts (round {round})"
            ),
            NetError::PeerDown { peer, round } => {
                write!(
                    f,
                    "peer {peer} declared down by failure detector (round {round})"
                )
            }
            NetError::HostCrashed { host, round } => {
                write!(f, "host {host} crashed by fault injection at round {round}")
            }
            NetError::Cancelled => write!(f, "cancelled: a sibling host failed"),
            NetError::Timeout => write!(f, "timed out: no matching message within the deadline"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_peer() {
        let e = NetError::PeerUnreachable {
            peer: 3,
            retries: 7,
            round: 11,
        };
        assert!(e.to_string().contains("peer 3"));
        assert!(e.to_string().contains("round 11"));
        assert_eq!(e.peer(), Some(3));
        assert_eq!(e.round(), Some(11));
        assert!(e.is_peer_failure());
    }

    #[test]
    fn detector_and_crash_variants_carry_rounds() {
        let d = NetError::PeerDown { peer: 1, round: 4 };
        assert_eq!(d.peer(), Some(1));
        assert_eq!(d.round(), Some(4));
        assert!(d.is_peer_failure());
        let c = NetError::HostCrashed { host: 2, round: 9 };
        assert_eq!(c.peer(), None);
        assert_eq!(c.round(), Some(9));
        assert!(c.is_peer_failure());
        assert!(c.to_string().contains("host 2"));
    }

    #[test]
    fn timeout_is_not_a_peer_failure() {
        let e = NetError::Timeout;
        assert_eq!(e.peer(), None);
        assert_eq!(e.round(), None);
        assert!(!e.is_peer_failure());
        assert!(e.to_string().contains("timed out"));
    }

    #[test]
    fn cancellation_blames_no_peer() {
        let e = NetError::Cancelled;
        assert_eq!(e.peer(), None);
        assert_eq!(e.round(), None);
        assert!(!e.is_peer_failure());
        assert!(e.to_string().contains("cancelled"));
    }
}
