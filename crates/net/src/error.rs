//! Transport-level errors.
//!
//! The in-memory [`crate::MemoryTransport`] cannot fail, but the reliability
//! layer ([`crate::ReliableTransport`]) can exhaust its retransmission
//! budget against a lossy or dead peer. That condition is surfaced as a
//! [`NetError`] through the `try_*` methods of [`crate::Transport`] so that
//! callers — ultimately the Gluon sync paths — can degrade gracefully
//! instead of blocking forever or panicking.

use std::fmt;

/// Errors surfaced by fallible transport operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetError {
    /// A peer did not acknowledge traffic within the retry budget, or a
    /// receive waited longer than the configured budget with no progress.
    /// The peer is presumed crashed, partitioned away, or stalled.
    PeerUnreachable {
        /// Rank of the unresponsive peer.
        peer: usize,
        /// Retransmission attempts (or receive budget, as retries) spent
        /// before giving up.
        retries: u32,
    },
}

impl NetError {
    /// The peer this error concerns.
    pub fn peer(&self) -> usize {
        match self {
            NetError::PeerUnreachable { peer, .. } => *peer,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::PeerUnreachable { peer, retries } => write!(
                f,
                "peer {peer} unreachable after {retries} retransmission attempts"
            ),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_peer() {
        let e = NetError::PeerUnreachable {
            peer: 3,
            retries: 7,
        };
        assert!(e.to_string().contains("peer 3"));
        assert_eq!(e.peer(), 3);
    }
}
