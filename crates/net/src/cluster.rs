//! SPMD cluster simulation: one OS thread per host.

use crate::stats::NetStats;
use crate::transport::{CancelToken, MemoryTransport, Transport};
use std::thread;

/// Runs `program` once per simulated host, in parallel, and returns the
/// per-host results in rank order.
///
/// This is the `mpirun` of the workspace: the closure receives that host's
/// [`MemoryTransport`] endpoint and executes the same program on every rank.
///
/// # Examples
///
/// ```
/// use gluon_net::{run_cluster, Communicator, Transport};
///
/// let totals = run_cluster(4, |ep| {
///     let comm = Communicator::new(ep);
///     comm.all_reduce_u64(1, |a, b| a + b)
/// });
/// assert_eq!(totals, vec![4, 4, 4, 4]);
/// ```
///
/// # Panics
///
/// Panics if any host's program panics (the panic is propagated).
pub fn run_cluster<R, F>(world_size: usize, program: F) -> Vec<R>
where
    R: Send,
    F: Fn(&MemoryTransport) -> R + Send + Sync,
{
    run_cluster_with_stats(world_size, NetStats::new(world_size), program).0
}

/// As [`run_cluster`], but with caller-provided counters; returns the
/// results together with the stats so callers can inspect traffic.
///
/// # Panics
///
/// Panics if any host's program panics, or if `stats` was sized for a
/// different world size.
pub fn run_cluster_with_stats<R, F>(
    world_size: usize,
    stats: NetStats,
    program: F,
) -> (Vec<R>, NetStats)
where
    R: Send,
    F: Fn(&MemoryTransport) -> R + Send + Sync,
{
    let endpoints = MemoryTransport::cluster_with_stats(world_size, stats.clone());
    let results = thread::scope(|s| {
        let program = &program;
        let handles: Vec<_> = endpoints
            .iter()
            .map(|ep| {
                thread::Builder::new()
                    .name(format!("host-{}", ep.rank()))
                    .spawn_scoped(s, move || program(ep))
                    .expect("spawn host thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    (results, stats)
}

/// As [`run_cluster_with_stats`], but each host's endpoint is first passed
/// through `wrap`, so the whole cluster runs over a wrapped transport stack
/// (jitter, fault injection, reliability, or any composition of them).
///
/// Endpoints are moved into `wrap` (wrappers own their inner transport),
/// so `program` receives the wrapped transport by reference.
///
/// # Examples
///
/// ```
/// use gluon_net::{run_cluster_wrapped, Communicator, JitterTransport,
///                 NetStats, Transport};
///
/// let (totals, _stats) = run_cluster_wrapped(
///     3,
///     NetStats::new(3),
///     |ep| JitterTransport::new(ep, 7),
///     |net| Communicator::new(net).all_reduce_u64(1, |a, b| a + b),
/// );
/// assert_eq!(totals, vec![3, 3, 3]);
/// ```
///
/// # Panics
///
/// Panics if any host's program panics, or if `stats` was sized for a
/// different world size.
pub fn run_cluster_wrapped<W, R, WrapF, ProgF>(
    world_size: usize,
    stats: NetStats,
    wrap: WrapF,
    program: ProgF,
) -> (Vec<R>, NetStats)
where
    W: Transport,
    R: Send,
    WrapF: Fn(MemoryTransport) -> W + Send + Sync,
    ProgF: Fn(&W) -> R + Send + Sync,
{
    let endpoints = MemoryTransport::cluster_with_stats(world_size, stats.clone());
    let results = thread::scope(|s| {
        let wrap = &wrap;
        let program = &program;
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                let rank = ep.rank();
                thread::Builder::new()
                    .name(format!("host-{rank}"))
                    .spawn_scoped(s, move || {
                        let net = wrap(ep);
                        program(&net)
                    })
                    .expect("spawn host thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    (results, stats)
}

/// As [`run_cluster_wrapped`], but the per-host program is *fallible*: it
/// returns a `Result` and additionally receives the cluster's shared
/// [`CancelToken`].
///
/// The runner never trips the token itself — that is the program's (or a
/// supervisor's) decision, because not every failure should abort the
/// siblings. In particular a host simulating its own crash must *not*
/// notify anyone: its peers are supposed to discover the silence through
/// their failure detectors. A program that hits a failure its peers cannot
/// otherwise observe should `token.trip()` before returning `Err`, which
/// makes every sibling blocked inside the in-memory transport (or a
/// reliability wrapper over it) return [`crate::NetError::Cancelled`]
/// promptly instead of waiting out its receive budget.
///
/// All per-host results — `Ok` and `Err` alike — are returned in rank
/// order; classification is the caller's job.
///
/// # Panics
///
/// Panics if any host's program panics, or if `stats` was sized for a
/// different world size.
pub fn run_cluster_fallible<W, R, E, WrapF, ProgF>(
    world_size: usize,
    stats: NetStats,
    wrap: WrapF,
    program: ProgF,
) -> (Vec<Result<R, E>>, NetStats)
where
    W: Transport,
    R: Send,
    E: Send,
    WrapF: Fn(MemoryTransport) -> W + Send + Sync,
    ProgF: Fn(&W, &CancelToken) -> Result<R, E> + Send + Sync,
{
    let endpoints = MemoryTransport::cluster_with_stats(world_size, stats.clone());
    let results = thread::scope(|s| {
        let wrap = &wrap;
        let program = &program;
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                let rank = ep.rank();
                let token = ep.cancel_token();
                thread::Builder::new()
                    .name(format!("host-{rank}"))
                    .spawn_scoped(s, move || {
                        let net = wrap(ep);
                        program(&net, &token)
                    })
                    .expect("spawn host thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Communicator;
    use crate::transport::Transport;

    #[test]
    fn results_are_in_rank_order() {
        let ranks = run_cluster(5, |ep| ep.rank());
        assert_eq!(ranks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stats_are_returned() {
        let (_, stats) = run_cluster_with_stats(3, NetStats::new(3), |ep| {
            let comm = Communicator::new(ep);
            comm.all_gather(bytes::Bytes::from_static(b"xy"));
        });
        // Each host sends its 2-byte payload to the 2 others.
        assert_eq!(stats.total_bytes(), 3 * 2 * 2);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn panics_propagate() {
        run_cluster(2, |ep| {
            if ep.rank() == 1 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn wrapped_cluster_survives_a_lossy_network() {
        use crate::fault::{FaultCounters, FaultPlan, FaultyTransport};
        use crate::reliable::ReliableTransport;

        let counters = FaultCounters::new();
        let (sums, _) = run_cluster_wrapped(
            3,
            NetStats::new(3),
            |ep| {
                let seed = 17 + ep.rank() as u64;
                ReliableTransport::over(FaultyTransport::new(
                    ep,
                    FaultPlan::lossy(seed),
                    counters.clone(),
                ))
            },
            |net| Communicator::new(net).all_reduce_u64(net.rank() as u64 + 1, |a, b| a + b),
        );
        assert_eq!(sums, vec![6, 6, 6]);
        assert!(counters.total() > 0, "the lossy plan must have fired");
    }

    #[test]
    fn fallible_cluster_returns_per_host_results() {
        let (results, _) = run_cluster_fallible(
            3,
            NetStats::new(3),
            |ep| ep,
            |net, _token| -> Result<usize, crate::error::NetError> {
                Communicator::new(net).barrier();
                Ok(net.rank() * 10)
            },
        );
        let values: Vec<_> = results.into_iter().map(|r| r.expect("all ok")).collect();
        assert_eq!(values, vec![0, 10, 20]);
    }

    #[test]
    fn tripped_token_aborts_a_blocked_sibling_promptly() {
        use crate::error::NetError;
        use std::time::{Duration, Instant};

        let started = Instant::now();
        let (results, _) = run_cluster_fallible(
            2,
            NetStats::new(2),
            |ep| ep,
            |net, token| -> Result<(), NetError> {
                if net.rank() == 0 {
                    // Host 0 fails immediately and tells everyone.
                    token.trip();
                    return Err(NetError::Cancelled);
                }
                // Host 1 waits for a message that will never come; the
                // token must unblock it, not a timeout.
                match net.try_recv(0, 0) {
                    Ok(_) => panic!("no message was ever sent"),
                    Err(e) => Err(e),
                }
            },
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "cancellation must be prompt"
        );
        for r in results {
            assert_eq!(r.expect_err("both hosts abort"), NetError::Cancelled);
        }
    }

    #[test]
    fn single_host_cluster_works() {
        let out = run_cluster(1, |ep| {
            let comm = Communicator::new(ep);
            comm.barrier();
            comm.all_reduce_u64(9, |a, b| a + b)
        });
        assert_eq!(out, vec![9]);
    }
}
