//! Cluster bootstrap for [`crate::SocketTransport`].
//!
//! Turning N freshly spawned processes into a fully connected mesh takes
//! two phases, both built from the same length-prefixed primitives:
//!
//! 1. **Rendezvous.** Rank 0 binds a listener at a well-known address
//!    (the only piece of configuration a launcher must distribute — for
//!    TCP an ephemeral port is fine because [`Rendezvous::advertised`]
//!    reports the actual address to print for the other workers). Every
//!    other rank binds its own *mesh* listener on an ephemeral address,
//!    connects to the rendezvous with retry-and-backoff (workers race the
//!    leader's bind), and sends `rank` plus its mesh address. Once all
//!    `world - 1` workers have checked in, rank 0 replies to each with
//!    the full address table.
//! 2. **Mesh.** With the table in hand, rank `r` *connects* to every peer
//!    `p < r` (announcing itself with a `u32` hello) and *accepts* one
//!    connection from every peer `p > r`. The triangular orientation
//!    means every pair establishes exactly one stream and nobody
//!    deadlocks waiting on a peer that is waiting on them.
//!
//! Connection attempts feed the `socket_connects` /
//! `socket_reconnect_attempts` counters on [`NetStats`], so bootstrap
//! behavior is observable in reports like any other wire mechanic.
//!
//! Addresses travel as strings of the form `tcp://127.0.0.1:4242` or
//! `unix:///tmp/dir/gluon.sock`; Unix-domain mesh listeners derive their
//! paths from the rendezvous path (`<path>.r<rank>`), so keep rendezvous
//! paths short — the kernel caps socket paths at ~100 bytes.

use crate::socket::{PeerStream, SocketTransport};
use crate::stats::NetStats;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// How long `join` keeps retrying a refused connection before giving up.
/// Generous: covers a launcher that spawns workers before the leader has
/// bound its listener, and CI machines under load.
const CONNECT_BUDGET: Duration = Duration::from_secs(20);

/// First retry delay; doubles per attempt up to [`MAX_BACKOFF`].
const INITIAL_BACKOFF: Duration = Duration::from_millis(10);

/// Ceiling on the connect retry delay.
const MAX_BACKOFF: Duration = Duration::from_millis(250);

/// Read timeout on bootstrap streams so a half-dead peer fails the
/// bootstrap with a typed I/O error instead of hanging the process.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed transport address: TCP endpoint or Unix-domain socket path.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Addr {
    Tcp(String),
    Unix(PathBuf),
}

impl Addr {
    fn parse(s: &str) -> io::Result<Addr> {
        if let Some(rest) = s.strip_prefix("tcp://") {
            Ok(Addr::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("unix://") {
            Ok(Addr::Unix(PathBuf::from(rest)))
        } else {
            Err(io::Error::new(
                ErrorKind::InvalidInput,
                format!("address must start with tcp:// or unix://, got {s:?}"),
            ))
        }
    }

    fn to_url(&self) -> String {
        match self {
            Addr::Tcp(a) => format!("tcp://{a}"),
            Addr::Unix(p) => format!("unix://{}", p.display()),
        }
    }
}

/// A bound listener of either family.
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds a mesh or rendezvous listener at `addr`. TCP addresses may
    /// use port 0 (the bound address is reported back); stale Unix socket
    /// files are removed first.
    fn bind(addr: &Addr) -> io::Result<Listener> {
        match addr {
            Addr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                Ok(Listener::Tcp(l))
            }
            Addr::Unix(p) => {
                // A previous run's socket file would make bind fail with
                // AddrInUse even though nobody is listening.
                let _ = std::fs::remove_file(p);
                let l = UnixListener::bind(p)?;
                Ok(Listener::Unix(l, p.clone()))
            }
        }
    }

    /// The actual bound address (resolves TCP port 0).
    fn local_addr(&self) -> io::Result<Addr> {
        match self {
            Listener::Tcp(l) => Ok(Addr::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(_, p) => Ok(Addr::Unix(p.clone())),
        }
    }

    /// Accepts one connection with the handshake read timeout applied.
    fn accept(&self) -> io::Result<PeerStream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
                s.set_nodelay(true)?;
                Ok(PeerStream::Tcp(s))
            }
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
                Ok(PeerStream::Unix(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, p) = self {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Connects to `addr`, retrying refused/absent endpoints with exponential
/// backoff until [`CONNECT_BUDGET`] elapses. Retries are counted as
/// `socket_reconnect_attempts`; the eventual success as a
/// `socket_connects`.
fn connect_with_retry(addr: &Addr, stats: &NetStats) -> io::Result<PeerStream> {
    let deadline = Instant::now() + CONNECT_BUDGET;
    let mut backoff = INITIAL_BACKOFF;
    let mut first = true;
    loop {
        let attempt = match addr {
            Addr::Tcp(a) => TcpStream::connect(a).map(|s| {
                s.set_nodelay(true)
                    .and(s.set_read_timeout(Some(HANDSHAKE_TIMEOUT)))?;
                Ok::<_, io::Error>(PeerStream::Tcp(s))
            }),
            Addr::Unix(p) => UnixStream::connect(p).map(|s| {
                s.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
                Ok::<_, io::Error>(PeerStream::Unix(s))
            }),
        };
        match attempt {
            Ok(Ok(stream)) => {
                stats.record_socket_connect();
                return Ok(stream);
            }
            Ok(Err(e)) => return Err(e),
            Err(e) => {
                if Instant::now() + backoff > deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!(
                            "connect to {} exhausted its retry budget: {e}",
                            addr.to_url()
                        ),
                    ));
                }
                if !first {
                    stats.record_socket_reconnect_attempt();
                }
                first = false;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
            }
        }
    }
}

fn write_u32(s: &mut PeerStream, v: u32) -> io::Result<()> {
    write_all(s, &v.to_le_bytes())
}

fn read_u32(s: &mut PeerStream) -> io::Result<u32> {
    let mut b = [0u8; 4];
    read_exact(s, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_str(s: &mut PeerStream, v: &str) -> io::Result<()> {
    write_u32(s, v.len() as u32)?;
    write_all(s, v.as_bytes())
}

fn read_str(s: &mut PeerStream) -> io::Result<String> {
    let len = read_u32(s)? as usize;
    if len > 4096 {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            "bootstrap address implausibly long",
        ));
    }
    let mut b = vec![0u8; len];
    read_exact(s, &mut b)?;
    String::from_utf8(b).map_err(|_| io::Error::new(ErrorKind::InvalidData, "non-UTF8 address"))
}

fn write_all(s: &mut PeerStream, buf: &[u8]) -> io::Result<()> {
    match s {
        PeerStream::Tcp(t) => t.write_all(buf),
        PeerStream::Unix(u) => u.write_all(buf),
    }
}

fn read_exact(s: &mut PeerStream, buf: &mut [u8]) -> io::Result<()> {
    match s {
        PeerStream::Tcp(t) => t.read_exact(buf),
        PeerStream::Unix(u) => u.read_exact(buf),
    }
}

/// Rank 0's bound rendezvous listener.
///
/// Two-step construction (bind, then [`Rendezvous::lead`]) lets the
/// worker process report the actual address — ephemeral TCP ports
/// included — to its launcher *before* blocking for the other workers.
pub struct Rendezvous {
    listener: Listener,
    advertised: String,
}

impl Rendezvous {
    /// Binds a TCP rendezvous listener, e.g. at `"127.0.0.1:0"`.
    pub fn bind_tcp(addr: &str) -> io::Result<Rendezvous> {
        Self::bind(&Addr::Tcp(addr.to_string()))
    }

    /// Binds a Unix-domain rendezvous listener at `path`. Mesh listeners
    /// derive their socket files from this path (`<path>.r<rank>`), so
    /// place it in a run-private directory with a short absolute path.
    pub fn bind_unix(path: &Path) -> io::Result<Rendezvous> {
        Self::bind(&Addr::Unix(path.to_path_buf()))
    }

    fn bind(addr: &Addr) -> io::Result<Rendezvous> {
        let listener = Listener::bind(addr)?;
        let advertised = listener.local_addr()?.to_url();
        Ok(Rendezvous {
            listener,
            advertised,
        })
    }

    /// The address workers must [`join`] — pass it to the launcher (e.g.
    /// print it on stdout) before calling [`Rendezvous::lead`].
    pub fn advertised(&self) -> &str {
        &self.advertised
    }

    /// Runs rank 0's side of the bootstrap: collects every worker's mesh
    /// address, hands each the full table, then accepts the mesh
    /// connections from all higher ranks. Returns the live endpoint.
    ///
    /// # Errors
    ///
    /// Any I/O failure during the handshake, including a worker that
    /// checks in with an out-of-range or duplicate rank.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero or `stats` is sized differently.
    pub fn lead(self, world: usize, stats: NetStats) -> io::Result<SocketTransport> {
        assert!(world > 0, "cluster needs at least one host");
        assert_eq!(stats.world_size(), world, "stats sized for world");
        let mesh_addr = self.mesh_addr_for_rank(0)?;
        let mesh = Listener::bind(&mesh_addr)?;
        let mut table: Vec<Option<String>> = vec![None; world];
        table[0] = Some(mesh.local_addr()?.to_url());
        // Collect every worker's mesh address.
        let mut checkins: Vec<(usize, PeerStream)> = Vec::with_capacity(world - 1);
        while checkins.len() < world - 1 {
            let mut s = self.listener.accept()?;
            stats.record_socket_connect();
            let rank = read_u32(&mut s)? as usize;
            if rank == 0 || rank >= world {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("worker announced out-of-range rank {rank}"),
                ));
            }
            let addr = read_str(&mut s)?;
            if table[rank].replace(addr).is_some() {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("two workers announced rank {rank}"),
                ));
            }
            checkins.push((rank, s));
        }
        let full: Vec<String> = table
            .into_iter()
            .map(|a| a.expect("every rank checked in"))
            .collect();
        // Hand the table to every worker; they proceed to the mesh phase.
        for (_, s) in checkins.iter_mut() {
            for addr in &full {
                write_str(s, addr)?;
            }
        }
        drop(checkins);
        accept_mesh(0, world, mesh, stats)
    }

    /// Derives the mesh-listener address for `rank` from the rendezvous
    /// address: TCP reuses the rendezvous interface with an ephemeral
    /// port; Unix appends `.r<rank>` to the rendezvous path.
    fn mesh_addr_for_rank(&self, rank: usize) -> io::Result<Addr> {
        mesh_addr(&Addr::parse(&self.advertised)?, rank)
    }
}

fn mesh_addr(rendezvous: &Addr, rank: usize) -> io::Result<Addr> {
    match rendezvous {
        Addr::Tcp(a) => {
            let host = a.rsplit_once(':').map(|(h, _)| h).unwrap_or("127.0.0.1");
            Ok(Addr::Tcp(format!("{host}:0")))
        }
        Addr::Unix(p) => {
            let mut path = p.as_os_str().to_os_string();
            path.push(format!(".r{rank}"));
            Ok(Addr::Unix(PathBuf::from(path)))
        }
    }
}

/// Runs a worker's (`rank >= 1`) side of the bootstrap against the
/// leader's advertised rendezvous address and returns the live endpoint.
///
/// # Errors
///
/// Any I/O failure: rendezvous unreachable past the retry budget, a
/// malformed address table, or a mesh peer that cannot be reached.
///
/// # Panics
///
/// Panics if `rank` is zero (the leader bootstraps via
/// [`Rendezvous::lead`]), `rank` is out of range, or `stats` is sized
/// differently.
pub fn join(
    advertised: &str,
    rank: usize,
    world: usize,
    stats: NetStats,
) -> io::Result<SocketTransport> {
    assert!(rank > 0, "rank 0 must bootstrap via Rendezvous::lead");
    assert!(rank < world, "rank out of range");
    assert_eq!(stats.world_size(), world, "stats sized for world");
    let rendezvous = Addr::parse(advertised)?;
    let mesh = Listener::bind(&mesh_addr(&rendezvous, rank)?)?;
    let mut leader = connect_with_retry(&rendezvous, &stats)?;
    write_u32(&mut leader, rank as u32)?;
    write_str(&mut leader, &mesh.local_addr()?.to_url())?;
    let mut table = Vec::with_capacity(world);
    for _ in 0..world {
        table.push(read_str(&mut leader)?);
    }
    drop(leader);
    // Triangular mesh: connect down, accept up.
    let mut conns: Vec<Option<PeerStream>> = (0..world).map(|_| None).collect();
    for (peer, slot) in conns.iter_mut().enumerate().take(rank) {
        let mut s = connect_with_retry(&Addr::parse(&table[peer])?, &stats)?;
        write_u32(&mut s, rank as u32)?;
        *slot = Some(s);
    }
    accept_mesh_into(rank, world, &mesh, &stats, &mut conns)?;
    Ok(SocketTransport::from_conns(rank, world, conns, stats))
}

/// Accepts mesh connections from every rank above `rank` and builds the
/// endpoint (leader-side tail of the bootstrap).
fn accept_mesh(
    rank: usize,
    world: usize,
    mesh: Listener,
    stats: NetStats,
) -> io::Result<SocketTransport> {
    let mut conns: Vec<Option<PeerStream>> = (0..world).map(|_| None).collect();
    accept_mesh_into(rank, world, &mesh, &stats, &mut conns)?;
    Ok(SocketTransport::from_conns(rank, world, conns, stats))
}

fn accept_mesh_into(
    rank: usize,
    world: usize,
    mesh: &Listener,
    stats: &NetStats,
    conns: &mut [Option<PeerStream>],
) -> io::Result<()> {
    for _ in rank + 1..world {
        let mut s = mesh.accept()?;
        stats.record_socket_connect();
        let peer = read_u32(&mut s)? as usize;
        if peer <= rank || peer >= world {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!("mesh hello from unexpected rank {peer}"),
            ));
        }
        if conns[peer].replace(s).is_some() {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!("rank {peer} connected twice"),
            ));
        }
    }
    Ok(())
}

/// Which socket family a cluster should run over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketKind {
    /// TCP over the loopback interface.
    Tcp,
    /// Unix-domain sockets in a run-private temporary directory.
    Unix,
}

/// In-process bootstrap coordinator: hands every rank of a threaded
/// cluster a [`SocketTransport`], so a run that normally uses
/// [`crate::MemoryTransport`] can exercise the real wire path without
/// spawning processes.
///
/// Rank 0's [`SocketFactory::endpoint`] call binds a fresh rendezvous
/// (one per supervisor attempt) and publishes its address; the other
/// ranks' calls block until that address appears, then [`join`]. The
/// factory owns the Unix-socket directory and removes it on drop.
pub struct SocketFactory {
    kind: SocketKind,
    unix_dir: Option<PathBuf>,
    published: std::sync::Mutex<std::collections::HashMap<u32, String>>,
    ready: std::sync::Condvar,
}

impl SocketFactory {
    /// A factory for `kind` sockets.
    ///
    /// # Panics
    ///
    /// Panics if the Unix-socket scratch directory cannot be created.
    pub fn new(kind: SocketKind) -> SocketFactory {
        static UNIQUE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let unix_dir = match kind {
            SocketKind::Tcp => None,
            SocketKind::Unix => {
                let n = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let dir = std::env::temp_dir().join(format!("gluon-sf-{}-{n}", std::process::id()));
                std::fs::create_dir_all(&dir).expect("socket scratch dir");
                Some(dir)
            }
        };
        SocketFactory {
            kind,
            unix_dir,
            published: std::sync::Mutex::new(std::collections::HashMap::new()),
            ready: std::sync::Condvar::new(),
        }
    }

    /// Bootstraps `rank`'s endpoint for supervisor attempt `attempt`.
    /// Blocks until the whole mesh for that attempt is up; every rank of
    /// an attempt must call this (ranks above 0 wait for rank 0's
    /// rendezvous address, bounded by the connect budget).
    ///
    /// # Errors
    ///
    /// Any bootstrap I/O failure, or a timeout waiting for rank 0.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range or `stats` is sized differently
    /// (see [`Rendezvous::lead`] / [`join`]).
    pub fn endpoint(
        &self,
        rank: usize,
        world: usize,
        stats: NetStats,
        attempt: u32,
    ) -> io::Result<SocketTransport> {
        if rank == 0 {
            let rv = match self.kind {
                SocketKind::Tcp => Rendezvous::bind_tcp("127.0.0.1:0")?,
                SocketKind::Unix => {
                    let dir = self.unix_dir.as_ref().expect("unix factory has a dir");
                    Rendezvous::bind_unix(&dir.join(format!("rv{attempt}.sock")))?
                }
            };
            let mut map = self.published.lock().expect("factory poisoned");
            map.insert(attempt, rv.advertised().to_string());
            drop(map);
            self.ready.notify_all();
            rv.lead(world, stats)
        } else {
            let deadline = Instant::now() + CONNECT_BUDGET;
            let mut map = self.published.lock().expect("factory poisoned");
            let advertised = loop {
                if let Some(url) = map.get(&attempt) {
                    break url.clone();
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(io::Error::new(
                        ErrorKind::TimedOut,
                        format!("rank 0 never published a rendezvous for attempt {attempt}"),
                    ));
                }
                let (guard, _) = self
                    .ready
                    .wait_timeout(map, deadline - now)
                    .expect("factory poisoned");
                map = guard;
            };
            drop(map);
            join(&advertised, rank, world, stats)
        }
    }
}

impl Drop for SocketFactory {
    fn drop(&mut self) {
        if let Some(dir) = &self.unix_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;
    use bytes::Bytes;
    use std::thread;

    /// Boots a `world`-sized cluster over in-process threads (each thread
    /// standing in for a worker process) and runs `body` on every rank.
    fn boot_threads<F, R>(world: usize, family: &str, body: F) -> Vec<R>
    where
        F: Fn(SocketTransport) -> R + Send + Sync,
        R: Send,
    {
        static UNIQUE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("gluon-bs-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("socket dir");
        let rv = if family == "tcp" {
            Rendezvous::bind_tcp("127.0.0.1:0").expect("bind rendezvous")
        } else {
            Rendezvous::bind_unix(&dir.join("rv.sock")).expect("bind rendezvous")
        };
        let advertised = rv.advertised().to_string();
        let mut out: Vec<Option<R>> = (0..world).map(|_| None).collect();
        thread::scope(|s| {
            let mut handles = Vec::new();
            let body = &body;
            handles.push(s.spawn({
                let stats = NetStats::new(world);
                move || (0, body(rv.lead(world, stats).expect("lead")))
            }));
            for rank in 1..world {
                let advertised = advertised.clone();
                handles.push(s.spawn({
                    let stats = NetStats::new(world);
                    move || {
                        (
                            rank,
                            body(join(&advertised, rank, world, stats).expect("join")),
                        )
                    }
                }));
            }
            for h in handles {
                let (rank, r) = h.join().expect("worker thread");
                out[rank] = Some(r);
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
        out.into_iter()
            .map(|r| r.expect("every rank ran"))
            .collect()
    }

    fn ring_pass(t: SocketTransport) -> u64 {
        let world = t.world_size();
        let next = (t.rank() + 1) % world;
        let prev = (t.rank() + world - 1) % world;
        let mut total = 0u64;
        for round in 0..5u64 {
            t.try_send(
                next,
                round as u32,
                Bytes::copy_from_slice(&round.to_le_bytes()),
            )
            .expect("send");
            let got = t.try_recv(prev, round as u32).expect("recv");
            total += u64::from_le_bytes(got[..8].try_into().expect("payload"));
        }
        total
    }

    #[test]
    fn tcp_ring_delivers_in_order() {
        let totals = boot_threads(3, "tcp", ring_pass);
        assert_eq!(totals, vec![10, 10, 10]);
    }

    #[test]
    fn unix_ring_delivers_in_order() {
        let totals = boot_threads(3, "unix", ring_pass);
        assert_eq!(totals, vec![10, 10, 10]);
    }

    #[test]
    fn self_send_and_any_recv_work() {
        let got = boot_threads(2, "tcp", |t| {
            t.try_send(t.rank(), 9, Bytes::from_static(b"me"))
                .expect("self send");
            let me = t.try_recv(t.rank(), 9).expect("self recv");
            let peer = 1 - t.rank();
            t.try_send(peer, 4, Bytes::from_static(b"x")).expect("send");
            let env = t.try_recv_any(4).expect("any");
            (me.to_vec(), env.src)
        });
        assert_eq!(got[0], (b"me".to_vec(), 1));
        assert_eq!(got[1], (b"me".to_vec(), 0));
    }

    #[test]
    fn timeout_expiry_is_typed_on_sockets() {
        let errs = boot_threads(2, "unix", |t| {
            let err = t
                .try_recv_any_timeout(77, Duration::from_millis(5))
                .expect_err("nothing was sent");
            // Keep both endpoints alive until each has finished polling:
            // without this rendezvous the faster rank's teardown EOF
            // turns the slower rank's expiry into a PeerDown.
            let peer = 1 - t.rank();
            t.try_send(peer, 1, Bytes::from_static(b"done"))
                .expect("send");
            t.try_recv(peer, 1).expect("peer done");
            err
        });
        assert!(errs.iter().all(|e| *e == crate::NetError::Timeout));
    }

    #[test]
    fn dropped_peer_latches_typed_peer_down() {
        let outcomes = boot_threads(2, "tcp", |t| {
            if t.rank() == 1 {
                // Simulated abrupt death: close both sockets without a word.
                t.note_round(3);
                drop(t);
                return None;
            }
            t.note_round(3);
            let err = t.try_recv(1, 0).expect_err("peer vanished");
            assert_eq!(err, crate::NetError::PeerDown { peer: 1, round: 3 });
            // The latched failure also surfaces through cancelled() and
            // fails sends fast.
            assert_eq!(t.cancelled(), Some(err));
            assert_eq!(
                t.try_send(1, 0, Bytes::from_static(b"late"))
                    .expect_err("dead"),
                err
            );
            Some(err)
        });
        assert!(outcomes[0].is_some());
    }

    #[test]
    fn factory_boots_both_families_per_attempt() {
        for kind in [SocketKind::Tcp, SocketKind::Unix] {
            let factory = SocketFactory::new(kind);
            for attempt in 0..2u32 {
                let world = 3;
                let shared = NetStats::new(world);
                let totals: Vec<u64> = thread::scope(|s| {
                    let handles: Vec<_> = (0..world)
                        .map(|rank| {
                            let factory = &factory;
                            let stats = shared.clone();
                            s.spawn(move || {
                                ring_pass(
                                    factory
                                        .endpoint(rank, world, stats, attempt)
                                        .expect("bootstrap"),
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("rank"))
                        .collect()
                });
                assert_eq!(totals, vec![10, 10, 10], "{kind:?} attempt {attempt}");
            }
        }
    }

    #[test]
    fn counters_match_memory_semantics_and_track_frames() {
        let stats: Vec<_> = boot_threads(2, "tcp", |t| {
            let peer = 1 - t.rank();
            for i in 0..10u32 {
                t.try_send(peer, i, Bytes::copy_from_slice(&[0u8; 100]))
                    .expect("send");
            }
            for i in 0..10u32 {
                let got = t.try_recv(peer, i).expect("recv");
                assert_eq!(got.len(), 100);
            }
            let s = t.stats().clone();
            // Sends are asynchronous: the event loop may not have picked
            // up the last queued frame yet, so wait for the wire counter
            // to catch up before snapshotting.
            let deadline = Instant::now() + Duration::from_secs(2);
            while s.socket_frames_sent() < 10 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            (
                s.host_sent(t.rank()),
                s.socket_frames_sent(),
                s.socket_frames_received(),
                s.socket_connects(),
            )
        });
        for (sent, fs, fr, conns) in &stats {
            // Payload accounting is identical to MemoryTransport: 10
            // messages of 100 payload bytes, no framing overhead.
            assert_eq!(*sent, (1000, 10));
            assert_eq!(*fs, 10);
            assert_eq!(*fr, 10);
            assert!(*conns >= 1);
        }
    }
}
