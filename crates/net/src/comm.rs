//! Collective operations built on the point-to-point [`Transport`].
//!
//! The Gluon runtime needs a handful of collectives: barriers between BSP
//! rounds, all-reduce for termination detection, all-gather for memoization
//! metadata exchange, and the all-to-all value exchange of the sync phase
//! itself. They are implemented here from `send`/`recv` so that the byte
//! counters see *all* traffic, including control traffic.
//!
//! # Tag space
//!
//! User code owns tags `0 .. 2^24`; the collectives use the range above
//! [`COLLECTIVE_TAG_BASE`], further salted with a per-communicator epoch so
//! that two interleaved collectives can never steal each other's packets.

use crate::error::NetError;
use crate::transport::Transport;
use bytes::{BufMut, Bytes, BytesMut};
use gluon_trace::Tracer;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// Recyclable 8-byte send buffers for the `u64` collectives, one per
/// (epoch parity, step). Two parities suffice: by the time epoch `e + 2`
/// reuses a slot, every peer has completed epoch `e + 1`, which it could
/// only enter after receiving — and dropping — the epoch-`e` payload, so
/// the slot's buffer is unique again and recycles in place.
const U64_SLOTS: usize = 2 * 64;

/// First tag reserved for collective-internal traffic.
pub const COLLECTIVE_TAG_BASE: u32 = 1 << 24;

/// Maximum user tag (exclusive).
pub const MAX_USER_TAG: u32 = COLLECTIVE_TAG_BASE;

/// Debug-checks that `tag` is a legal *user* tag (below [`MAX_USER_TAG`]),
/// i.e. cannot collide with collective or reliability traffic. Call this
/// at every boundary that accepts a tag from application code.
pub fn assert_user_tag(tag: u32) {
    debug_assert!(
        tag < MAX_USER_TAG,
        "user tag {tag:#x} intrudes on the reserved tag space (>= {MAX_USER_TAG:#x})"
    );
}

/// Collectives over a [`Transport`].
///
/// Every host of the cluster must construct its communicator over its own
/// endpoint and then call the *same sequence* of collectives — the usual
/// SPMD contract.
///
/// # Examples
///
/// ```
/// use gluon_net::{Communicator, MemoryTransport, Transport};
/// use std::thread;
///
/// let eps = MemoryTransport::cluster(4);
/// thread::scope(|s| {
///     for ep in &eps {
///         s.spawn(move || {
///             let comm = Communicator::new(ep);
///             let sum = comm.all_reduce_u64(ep.rank() as u64 + 1, |a, b| a + b);
///             assert_eq!(sum, 1 + 2 + 3 + 4);
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct Communicator<'t, T: Transport + ?Sized> {
    transport: &'t T,
    epoch: AtomicU32,
    tracer: Tracer,
    /// See [`U64_SLOTS`]. Termination detection runs one `u64` all-reduce
    /// per BSP round, so these tiny buffers would otherwise be a steady
    /// per-round allocation source.
    u64_slots: Mutex<Vec<Option<Bytes>>>,
}

impl<'t, T: Transport + ?Sized> Communicator<'t, T> {
    /// Wraps a transport endpoint.
    pub fn new(transport: &'t T) -> Self {
        Communicator::with_tracer(transport, Tracer::disabled())
    }

    /// Wraps a transport endpoint with a [`Tracer`]: barriers report their
    /// wait time to it, and runtimes built on this communicator (e.g.
    /// `GluonContext`) adopt it for span recording.
    pub fn with_tracer(transport: &'t T, tracer: Tracer) -> Self {
        Communicator {
            transport,
            epoch: AtomicU32::new(0),
            tracer,
            u64_slots: Mutex::new((0..U64_SLOTS).map(|_| None).collect()),
        }
    }

    /// The tracer threaded through this communicator (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// This host's rank.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Cluster size.
    pub fn world_size(&self) -> usize {
        self.transport.world_size()
    }

    /// The underlying transport.
    pub fn transport(&self) -> &'t T {
        self.transport
    }

    fn next_epoch(&self) -> u32 {
        // 128 epochs in flight is far more than BSP lock-step allows.
        self.epoch.fetch_add(1, Ordering::Relaxed) % 128
    }

    fn tag(epoch: u32, step: u32) -> u32 {
        // The collective tag space is [COLLECTIVE_TAG_BASE, RELIABLE_TAG):
        // 128 epochs x 64 steps fits with room to spare, but keep the
        // contract checked in debug builds.
        debug_assert!(
            step < 64,
            "collective step {step} overflows the epoch stride"
        );
        debug_assert!(epoch < 128, "collective epoch {epoch} out of range");
        COLLECTIVE_TAG_BASE + epoch * 64 + step
    }

    /// Dissemination barrier: returns only after every host has entered.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    pub fn try_barrier(&self) -> Result<(), NetError> {
        let n = self.world_size();
        if n == 1 {
            return Ok(());
        }
        let rank = self.rank();
        let epoch = self.next_epoch();
        let entered = self.tracer.is_enabled().then(Instant::now);
        let mut step = 0u32;
        let mut distance = 1usize;
        while distance < n {
            let to = (rank + distance) % n;
            let from = (rank + n - distance % n) % n;
            self.transport
                .try_send(to, Self::tag(epoch, step), Bytes::new())?;
            let _ = self.transport.try_recv(from, Self::tag(epoch, step))?;
            distance *= 2;
            step += 1;
        }
        if let Some(entered) = entered {
            self.tracer
                .add_barrier_wait(entered.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// As [`Communicator::try_barrier`], panicking on network failure.
    pub fn barrier(&self) {
        self.try_barrier()
            .unwrap_or_else(|e| panic!("barrier failed: {e}"));
    }

    /// All-reduce over opaque fixed-size byte payloads.
    ///
    /// `combine(acc, other)` must be associative and commutative. Every host
    /// receives the same result.
    ///
    /// Uses recursive doubling on power-of-two cluster sizes (log₂ n
    /// rounds, the classic MPI algorithm) and falls back to a
    /// gather-to-root + broadcast star otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    pub fn try_all_reduce_bytes(
        &self,
        value: Bytes,
        combine: impl Fn(Bytes, Bytes) -> Bytes,
    ) -> Result<Bytes, NetError> {
        let n = self.world_size();
        if n == 1 {
            return Ok(value);
        }
        let rank = self.rank();
        let epoch = self.next_epoch();
        if n.is_power_of_two() {
            // Recursive doubling: at step k exchange with the partner that
            // differs in bit k; both sides hold the combined value after.
            let mut acc = value;
            let mut step = 0u32;
            let mut distance = 1usize;
            while distance < n {
                let partner = rank ^ distance;
                self.transport
                    .try_send(partner, Self::tag(epoch, step), acc.clone())?;
                let other = self.transport.try_recv(partner, Self::tag(epoch, step))?;
                // Combine in rank order so non-commutative float effects
                // are at least deterministic per pair.
                acc = if rank < partner {
                    combine(acc, other)
                } else {
                    combine(other, acc)
                };
                distance <<= 1;
                step += 1;
            }
            return Ok(acc);
        }
        // Gather to rank 0, combine, then broadcast back.
        if rank == 0 {
            let mut acc = value;
            for src in 1..n {
                let other = self.transport.try_recv(src, Self::tag(epoch, 0))?;
                acc = combine(acc, other);
            }
            for dst in 1..n {
                self.transport
                    .try_send(dst, Self::tag(epoch, 1), acc.clone())?;
            }
            Ok(acc)
        } else {
            self.transport.try_send(0, Self::tag(epoch, 0), value)?;
            self.transport.try_recv(0, Self::tag(epoch, 1))
        }
    }

    /// As [`Communicator::try_all_reduce_bytes`], panicking on network
    /// failure.
    pub fn all_reduce_bytes(&self, value: Bytes, combine: impl Fn(Bytes, Bytes) -> Bytes) -> Bytes {
        self.try_all_reduce_bytes(value, combine)
            .unwrap_or_else(|e| panic!("all-reduce failed: {e}"))
    }

    /// Encodes `value` into the recycled send buffer of this
    /// (epoch, step) slot, allocating a fresh one only when a consumer
    /// still holds the previous epoch's buffer.
    fn u64_payload(&self, epoch: u32, step: u32, value: u64) -> Bytes {
        let idx = (epoch as usize % 2) * 64 + step as usize;
        let mut slots = self.u64_slots.lock();
        let mut bytes = slots[idx].take().unwrap_or_default();
        match bytes.try_unique_vec() {
            Some(out) => {
                out.clear();
                out.extend_from_slice(&value.to_le_bytes());
            }
            None => bytes = Bytes::from(value.to_le_bytes().to_vec()),
        }
        slots[idx] = Some(bytes.clone());
        bytes
    }

    /// All-reduce of a `u64` with the given combiner.
    ///
    /// Runs the same recursive-doubling / star topology as
    /// [`Communicator::try_all_reduce_bytes`] (identical combine order),
    /// but sends from the recycled per-step buffers, so steady-state
    /// termination detection allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    pub fn try_all_reduce_u64(
        &self,
        value: u64,
        combine: impl Fn(u64, u64) -> u64,
    ) -> Result<u64, NetError> {
        let n = self.world_size();
        if n == 1 {
            return Ok(value);
        }
        let rank = self.rank();
        let epoch = self.next_epoch();
        let read = |b: Bytes| u64::from_le_bytes(b[..8].try_into().expect("8-byte payload"));
        if n.is_power_of_two() {
            // Recursive doubling, combining in rank order per pair — the
            // byte-level twin in try_all_reduce_bytes documents why.
            let mut acc = value;
            let mut step = 0u32;
            let mut distance = 1usize;
            while distance < n {
                let partner = rank ^ distance;
                self.transport.try_send(
                    partner,
                    Self::tag(epoch, step),
                    self.u64_payload(epoch, step, acc),
                )?;
                let other = read(self.transport.try_recv(partner, Self::tag(epoch, step))?);
                acc = if rank < partner {
                    combine(acc, other)
                } else {
                    combine(other, acc)
                };
                distance <<= 1;
                step += 1;
            }
            return Ok(acc);
        }
        // Gather to rank 0, combine in src order, then broadcast back.
        if rank == 0 {
            let mut acc = value;
            for src in 1..n {
                acc = combine(
                    acc,
                    read(self.transport.try_recv(src, Self::tag(epoch, 0))?),
                );
            }
            let payload = self.u64_payload(epoch, 1, acc);
            for dst in 1..n {
                self.transport
                    .try_send(dst, Self::tag(epoch, 1), payload.clone())?;
            }
            Ok(acc)
        } else {
            self.transport
                .try_send(0, Self::tag(epoch, 0), self.u64_payload(epoch, 0, value))?;
            Ok(read(self.transport.try_recv(0, Self::tag(epoch, 1))?))
        }
    }

    /// As [`Communicator::try_all_reduce_u64`], panicking on network
    /// failure.
    pub fn all_reduce_u64(&self, value: u64, combine: impl Fn(u64, u64) -> u64) -> u64 {
        self.try_all_reduce_u64(value, combine)
            .unwrap_or_else(|e| panic!("all-reduce failed: {e}"))
    }

    /// All-reduce of an `f64` with the given combiner.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    pub fn try_all_reduce_f64(
        &self,
        value: f64,
        combine: impl Fn(f64, f64) -> f64,
    ) -> Result<f64, NetError> {
        Ok(f64::from_bits(
            self.try_all_reduce_u64(value.to_bits(), |a, b| {
                combine(f64::from_bits(a), f64::from_bits(b)).to_bits()
            })?,
        ))
    }

    /// As [`Communicator::try_all_reduce_f64`], panicking on network
    /// failure.
    pub fn all_reduce_f64(&self, value: f64, combine: impl Fn(f64, f64) -> f64) -> f64 {
        self.try_all_reduce_f64(value, combine)
            .unwrap_or_else(|e| panic!("all-reduce failed: {e}"))
    }

    /// Returns true iff `flag` is true on *any* host (distributed OR) —
    /// Gluon's termination-detection primitive.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    pub fn try_any(&self, flag: bool) -> Result<bool, NetError> {
        Ok(self.try_all_reduce_u64(u64::from(flag), |a, b| a | b)? != 0)
    }

    /// As [`Communicator::try_any`], panicking on network failure.
    pub fn any(&self, flag: bool) -> bool {
        self.try_any(flag)
            .unwrap_or_else(|e| panic!("distributed OR failed: {e}"))
    }

    /// Returns true iff `flag` is true on *every* host (distributed AND).
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    pub fn try_all(&self, flag: bool) -> Result<bool, NetError> {
        Ok(self.try_all_reduce_u64(u64::from(flag), |a, b| a & b)? != 0)
    }

    /// As [`Communicator::try_all`], panicking on network failure.
    pub fn all(&self, flag: bool) -> bool {
        self.try_all(flag)
            .unwrap_or_else(|e| panic!("distributed AND failed: {e}"))
    }

    /// Every host contributes one payload; everyone receives all payloads in
    /// rank order.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    pub fn try_all_gather(&self, value: Bytes) -> Result<Vec<Bytes>, NetError> {
        let n = self.world_size();
        let rank = self.rank();
        let epoch = self.next_epoch();
        for dst in 0..n {
            if dst != rank {
                self.transport
                    .try_send(dst, Self::tag(epoch, 2), value.clone())?;
            }
        }
        let mut out = Vec::with_capacity(n);
        for src in 0..n {
            if src == rank {
                out.push(value.clone());
            } else {
                out.push(self.transport.try_recv(src, Self::tag(epoch, 2))?);
            }
        }
        Ok(out)
    }

    /// As [`Communicator::try_all_gather`], panicking on network failure.
    pub fn all_gather(&self, value: Bytes) -> Vec<Bytes> {
        self.try_all_gather(value)
            .unwrap_or_else(|e| panic!("all-gather failed: {e}"))
    }

    /// Personalized all-to-all: `outgoing[d]` goes to host `d`; the return
    /// value holds one payload from every host, in rank order.
    ///
    /// This is the workhorse of the Gluon sync phase. Empty payloads are
    /// legal and still exchanged (the paper's "send an empty message" mode);
    /// byte counters record them as zero-byte messages.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `outgoing.len() != world_size()`.
    pub fn try_all_to_all(&self, outgoing: Vec<Bytes>) -> Result<Vec<Bytes>, NetError> {
        let n = self.world_size();
        assert_eq!(outgoing.len(), n, "need exactly one payload per host");
        let rank = self.rank();
        let epoch = self.next_epoch();
        let mut incoming: Vec<Option<Bytes>> = vec![None; n];
        for (dst, payload) in outgoing.into_iter().enumerate() {
            if dst == rank {
                incoming[rank] = Some(payload);
            } else {
                self.transport.try_send(dst, Self::tag(epoch, 3), payload)?;
            }
        }
        for (src, slot) in incoming.iter_mut().enumerate() {
            if src != rank {
                *slot = Some(self.transport.try_recv(src, Self::tag(epoch, 3))?);
            }
        }
        Ok(incoming
            .into_iter()
            .map(|m| m.expect("filled for every rank"))
            .collect())
    }

    /// As [`Communicator::try_all_to_all`], panicking on network failure.
    pub fn all_to_all(&self, outgoing: Vec<Bytes>) -> Vec<Bytes> {
        self.try_all_to_all(outgoing)
            .unwrap_or_else(|e| panic!("all-to-all failed: {e}"))
    }

    /// Broadcast from `root` to all hosts (binomial tree, log₂ n rounds).
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    pub fn try_broadcast_from(&self, root: usize, value: Option<Bytes>) -> Result<Bytes, NetError> {
        let n = self.world_size();
        let rank = self.rank();
        let epoch = self.next_epoch();
        // Work in a rotated rank space where the root is 0; each holder at
        // "virtual" rank r forwards to r + 2^k once it has the value.
        let vrank = (rank + n - root % n) % n;
        let v = if vrank == 0 {
            value.expect("root must supply the broadcast value")
        } else {
            // Receive from the sender responsible for this virtual rank:
            // the holder whose highest set bit we extend.
            let bit = 1usize << (usize::BITS - 1 - vrank.leading_zeros()) as usize;
            let vsrc = vrank - bit;
            let src = (vsrc + root) % n;
            let step = bit.trailing_zeros();
            self.transport.try_recv(src, Self::tag(epoch, 4 + step))?
        };
        // Forward to virtual ranks vrank + 2^k for each k above our own
        // highest bit, while they are in range.
        let start_bit = if vrank == 0 {
            1usize
        } else {
            1usize << (usize::BITS - vrank.leading_zeros()) as usize
        };
        let mut bit = start_bit;
        while vrank + bit < n {
            let dst = (vrank + bit + root) % n;
            let step = bit.trailing_zeros();
            self.transport
                .try_send(dst, Self::tag(epoch, 4 + step), v.clone())?;
            bit <<= 1;
        }
        Ok(v)
    }

    /// As [`Communicator::try_broadcast_from`], panicking on network
    /// failure.
    pub fn broadcast_from(&self, root: usize, value: Option<Bytes>) -> Bytes {
        self.try_broadcast_from(root, value)
            .unwrap_or_else(|e| panic!("broadcast from host {root} failed: {e}"))
    }

    /// Sums per-host `u64` vectors element-wise across the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    ///
    /// # Panics
    ///
    /// Panics on hosts whose vector lengths disagree.
    pub fn try_all_reduce_sum_vec(&self, values: &[u64]) -> Result<Vec<u64>, NetError> {
        let mut buf = BytesMut::with_capacity(values.len() * 8);
        for v in values {
            buf.put_u64_le(*v);
        }
        let out = self.try_all_reduce_bytes(buf.freeze(), |a, b| {
            assert_eq!(a.len(), b.len(), "vector lengths disagree across hosts");
            let mut acc = BytesMut::with_capacity(a.len());
            for (ca, cb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
                let va = u64::from_le_bytes(ca.try_into().expect("8-byte chunk"));
                let vb = u64::from_le_bytes(cb.try_into().expect("8-byte chunk"));
                acc.put_u64_le(va + vb);
            }
            acc.freeze()
        })?;
        Ok(out
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    /// As [`Communicator::try_all_reduce_sum_vec`], panicking on network
    /// failure.
    pub fn all_reduce_sum_vec(&self, values: &[u64]) -> Vec<u64> {
        self.try_all_reduce_sum_vec(values)
            .unwrap_or_else(|e| panic!("vector all-reduce failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::MemoryTransport;
    use std::thread;

    fn on_cluster<R: Send>(n: usize, f: impl Fn(&MemoryTransport) -> R + Sync) -> Vec<R> {
        let eps = MemoryTransport::cluster(n);
        thread::scope(|s| {
            let handles: Vec<_> = eps.iter().map(|ep| s.spawn(|| f(ep))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        })
    }

    #[test]
    fn barrier_completes_on_various_sizes() {
        for n in [1, 2, 3, 5, 8] {
            on_cluster(n, |ep| {
                let comm = Communicator::new(ep);
                for _ in 0..3 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn all_reduce_sum_and_max() {
        let sums = on_cluster(5, |ep| {
            let comm = Communicator::new(ep);
            comm.all_reduce_u64(ep.rank() as u64, |a, b| a + b)
        });
        assert!(sums.iter().all(|&s| s == 10));
        let maxes = on_cluster(5, |ep| {
            let comm = Communicator::new(ep);
            comm.all_reduce_u64(ep.rank() as u64 * 7, u64::max)
        });
        assert!(maxes.iter().all(|&m| m == 28));
    }

    #[test]
    fn all_reduce_f64_min() {
        let mins = on_cluster(4, |ep| {
            let comm = Communicator::new(ep);
            comm.all_reduce_f64(1.0 / (ep.rank() as f64 + 1.0), f64::min)
        });
        assert!(mins.iter().all(|&m| (m - 0.25).abs() < 1e-12));
    }

    #[test]
    fn any_and_all() {
        let anys = on_cluster(4, |ep| {
            let comm = Communicator::new(ep);
            comm.any(ep.rank() == 2)
        });
        assert!(anys.iter().all(|&x| x));
        let alls = on_cluster(4, |ep| {
            let comm = Communicator::new(ep);
            comm.all(ep.rank() != 2)
        });
        assert!(alls.iter().all(|&x| !x));
    }

    #[test]
    fn all_gather_orders_by_rank() {
        let out = on_cluster(3, |ep| {
            let comm = Communicator::new(ep);
            let mine = Bytes::copy_from_slice(&[ep.rank() as u8]);
            comm.all_gather(mine)
        });
        for gathered in out {
            let ranks: Vec<u8> = gathered.iter().map(|b| b[0]).collect();
            assert_eq!(ranks, vec![0, 1, 2]);
        }
    }

    #[test]
    fn all_to_all_personalizes() {
        let out = on_cluster(3, |ep| {
            let comm = Communicator::new(ep);
            let outgoing = (0..3)
                .map(|dst| Bytes::copy_from_slice(&[ep.rank() as u8, dst as u8]))
                .collect();
            comm.all_to_all(outgoing)
        });
        for (rank, incoming) in out.into_iter().enumerate() {
            for (src, payload) in incoming.into_iter().enumerate() {
                assert_eq!(payload[0] as usize, src);
                assert_eq!(payload[1] as usize, rank);
            }
        }
    }

    #[test]
    fn all_to_all_with_empty_payloads() {
        let out = on_cluster(4, |ep| {
            let comm = Communicator::new(ep);
            comm.all_to_all(vec![Bytes::new(); 4])
        });
        assert!(out.iter().all(|v| v.iter().all(|b| b.is_empty())));
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let out = on_cluster(4, |ep| {
            let comm = Communicator::new(ep);
            let v = (ep.rank() == 2).then(|| Bytes::from_static(b"root"));
            comm.broadcast_from(2, v)
        });
        assert!(out.iter().all(|b| &b[..] == b"root"));
    }

    #[test]
    fn vector_sum_reduces_elementwise() {
        let out = on_cluster(3, |ep| {
            let comm = Communicator::new(ep);
            comm.all_reduce_sum_vec(&[ep.rank() as u64, 10])
        });
        assert!(out.iter().all(|v| v == &vec![3, 30]));
    }

    #[test]
    fn recursive_doubling_matches_star_reduce() {
        // Power-of-two sizes take the recursive-doubling path; results must
        // be identical on every host and equal to the sequential fold.
        for n in [2usize, 4, 8, 16] {
            let sums = on_cluster(n, |ep| {
                let comm = Communicator::new(ep);
                comm.all_reduce_u64((ep.rank() as u64 + 1) * 3, |a, b| a + b)
            });
            let expect: u64 = (1..=n as u64).map(|r| r * 3).sum();
            assert!(sums.iter().all(|&s| s == expect), "n={n}: {sums:?}");
        }
    }

    #[test]
    fn float_all_reduce_is_bitwise_identical_across_hosts() {
        let out = on_cluster(8, |ep| {
            let comm = Communicator::new(ep);
            comm.all_reduce_f64(0.1 * (ep.rank() as f64 + 1.0), |a, b| a + b)
        });
        assert!(out.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()));
    }

    #[test]
    fn binomial_broadcast_from_every_root() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            for root in 0..n {
                let out = on_cluster(n, |ep| {
                    let comm = Communicator::new(ep);
                    let v =
                        (ep.rank() == root).then(|| Bytes::copy_from_slice(&[root as u8, 0xAB]));
                    comm.broadcast_from(root, v)
                });
                assert!(
                    out.iter().all(|b| b[..] == [root as u8, 0xAB]),
                    "n={n} root={root}"
                );
            }
        }
    }

    #[test]
    fn interleaved_collectives_do_not_cross_talk() {
        let out = on_cluster(4, |ep| {
            let comm = Communicator::new(ep);
            let mut results = Vec::new();
            for round in 0..10u64 {
                comm.barrier();
                results.push(comm.all_reduce_u64(round + ep.rank() as u64, |a, b| a + b));
            }
            results
        });
        for host in out {
            for (round, sum) in host.into_iter().enumerate() {
                assert_eq!(sum, 4 * round as u64 + 6);
            }
        }
    }

    #[test]
    fn collectives_do_not_deep_copy_payloads() {
        // Each host contributes one buffer; every host must end up holding
        // a handle to the contributor's *own* allocation — the in-memory
        // transport moves `Bytes` handles, never the bytes behind them.
        let out = on_cluster(3, |ep| {
            let comm = Communicator::new(ep);
            let mine = Bytes::from(vec![ep.rank() as u8; 64]);
            let my_ptr = mine.as_ptr() as usize;
            let gathered = comm.all_gather(mine);
            let ptrs: Vec<usize> = gathered.iter().map(|b| b.as_ptr() as usize).collect();
            (my_ptr, ptrs)
        });
        for (_, ptrs) in &out {
            for (src, &ptr) in ptrs.iter().enumerate() {
                assert_eq!(
                    ptr, out[src].0,
                    "host received a copy instead of host {src}'s buffer"
                );
            }
        }
    }

    #[test]
    fn u64_all_reduce_recycles_cleanly_across_many_epochs() {
        // Drive the epoch counter far past the 128-epoch ring (and the
        // two-parity send-slot ring) on both topologies: recycled buffers
        // must never leak a stale value into a later epoch.
        for n in [3usize, 4] {
            let ok = on_cluster(n, |ep| {
                let comm = Communicator::new(ep);
                let base: u64 = (0..n as u64).sum();
                (0..300u64).all(|round| {
                    comm.all_reduce_u64(round * 10 + ep.rank() as u64, |a, b| a + b)
                        == n as u64 * round * 10 + base
                })
            });
            assert!(ok.iter().all(|&x| x), "stale value on cluster size {n}");
        }
    }
}
