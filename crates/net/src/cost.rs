//! Latency–bandwidth (α–β) network cost model.
//!
//! The simulated cluster moves bytes through memory, so wall-clock time does
//! not reflect what a real interconnect would charge. This model projects
//! communication time from the measured traffic: a message of `s` bytes
//! costs `alpha + s * beta`. The defaults approximate the Intel Omni-Path
//! fabric used by the paper's Stampede2 and Bridges clusters (100 Gb/s,
//! ~1 µs latency).

use crate::stats::StatsDelta;
use serde::{Deserialize, Serialize};

/// α–β cost model: `time(msg) = alpha_secs + bytes * beta_secs_per_byte`.
///
/// # Examples
///
/// ```
/// use gluon_net::CostModel;
///
/// let m = CostModel::OMNI_PATH;
/// let one_mib = m.message_time(1 << 20);
/// let two_mib = m.message_time(2 << 20);
/// assert!(two_mib > one_mib);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Per-message latency in seconds.
    pub alpha_secs: f64,
    /// Per-byte transfer time in seconds (1 / bandwidth).
    pub beta_secs_per_byte: f64,
}

impl CostModel {
    /// Approximation of Intel Omni-Path (100 Gb/s, 1 µs latency), the
    /// interconnect of both clusters in the paper.
    pub const OMNI_PATH: CostModel = CostModel {
        alpha_secs: 1e-6,
        beta_secs_per_byte: 8.0 / 100e9,
    };

    /// A slow commodity network (1 Gb/s, 50 µs), useful for exaggerating
    /// communication effects in demos.
    pub const GIGABIT: CostModel = CostModel {
        alpha_secs: 50e-6,
        beta_secs_per_byte: 8.0 / 1e9,
    };

    /// The model the benchmark harness projects with. The reproduction runs
    /// inputs three to four orders of magnitude smaller than the paper's,
    /// which would leave local compute dominating and mask the
    /// communication effects the paper measures ("performance on large
    /// clusters is limited by communication overhead", §1). Scaling the
    /// per-byte and per-message costs up (250 Mb/s, 20 µs) restores the
    /// paper's compute-to-communication balance at this input scale;
    /// communication *volumes* are unaffected (they are measured exactly).
    pub const REPRO: CostModel = CostModel {
        alpha_secs: 20e-6,
        beta_secs_per_byte: 32e-9,
    };

    /// Projected time to deliver one message of `bytes` bytes.
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.alpha_secs + bytes as f64 * self.beta_secs_per_byte
    }

    /// Projected time for a communication phase described by a stats delta.
    ///
    /// BSP communication completes when the busiest host finishes sending,
    /// so the projection charges the maximum per-host traffic, not the sum.
    ///
    /// Retransmitted frames are charged a second time on top: the per-host
    /// matrices already count every frame that crossed the wire (including
    /// the resends), but each retransmission also implies at least one
    /// retransmission-timeout stall on the sender that the matrices cannot
    /// see. Charging `alpha + bytes * beta` once more per retransmitted
    /// frame is a lower bound on that stall.
    pub fn phase_time(&self, delta: &StatsDelta) -> f64 {
        delta.max_host_messages as f64 * self.alpha_secs
            + delta.max_host_bytes as f64 * self.beta_secs_per_byte
            + delta.retransmit_messages as f64 * self.alpha_secs
            + delta.retransmit_bytes as f64 * self.beta_secs_per_byte
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::OMNI_PATH
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_messages() {
        let m = CostModel::OMNI_PATH;
        assert!(m.message_time(1) < 2.0 * m.alpha_secs);
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let m = CostModel::OMNI_PATH;
        let t = m.message_time(1 << 30);
        assert!(t > 100.0 * m.alpha_secs);
    }

    #[test]
    fn phase_time_charges_the_straggler() {
        let m = CostModel {
            alpha_secs: 1.0,
            beta_secs_per_byte: 1.0,
        };
        let d = StatsDelta {
            total_bytes: 100,
            total_messages: 10,
            max_host_bytes: 60,
            max_host_messages: 4,
            ..Default::default()
        };
        assert!((m.phase_time(&d) - 64.0).abs() < 1e-12);
    }

    #[test]
    fn phase_time_charges_retransmissions_on_top() {
        let m = CostModel {
            alpha_secs: 1.0,
            beta_secs_per_byte: 1.0,
        };
        let clean = StatsDelta {
            max_host_bytes: 60,
            max_host_messages: 4,
            ..Default::default()
        };
        let lossy = StatsDelta {
            retransmit_bytes: 20,
            retransmit_messages: 2,
            ..clean
        };
        assert!((m.phase_time(&clean) - 64.0).abs() < 1e-12);
        assert!((m.phase_time(&lossy) - 86.0).abs() < 1e-12);
    }

    #[test]
    fn gigabit_is_slower_than_omni_path() {
        let bytes = 1 << 20;
        assert!(CostModel::GIGABIT.message_time(bytes) > CostModel::OMNI_PATH.message_time(bytes));
    }
}
