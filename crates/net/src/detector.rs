//! Heartbeat-based failure detection.
//!
//! A crashed host cannot say goodbye: all its peers observe is silence.
//! Without a detector, that silence turns into an indefinite `recv_wait`
//! (or a very slow retransmission-budget exhaustion). The reliability
//! layer therefore exchanges lightweight heartbeat frames whenever it
//! touches the wire, and a per-peer [`FailureDetector`] — a simplified
//! phi-accrual detector in the style of Hayashibara et al. — converts
//! sustained silence into a typed [`crate::NetError::PeerDown`].
//!
//! The phi value models inter-arrival gaps as exponentially distributed
//! with the observed (EWMA) mean: `phi = elapsed / (mean * ln 10)` is the
//! negative log-probability of seeing a gap this long from a live peer.
//! Suspicion requires `phi` above [`DetectorConfig::phi_threshold`] *and*
//! silence past [`DetectorConfig::min_silence`] (so a handful of early
//! samples cannot trigger it), and is forced once silence exceeds the
//! [`DetectorConfig::max_silence`] hard backstop regardless of history.
//!
//! The detector is entirely passive: it never sends anything itself and
//! holds no locks or threads. [`crate::ReliableTransport`] feeds it
//! arrivals and polls it from its blocking loops.

use std::time::{Duration, Instant};

/// EWMA weight of the newest inter-arrival sample (1/8, like TCP's SRTT).
const GAP_ALPHA: f64 = 0.125;

/// Arrivals needed before the phi path may fire (the backstop is always
/// armed); protects against a cold estimator declaring everyone dead.
const MIN_SAMPLES: u64 = 8;

/// Tuning for the heartbeat failure detector.
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// How often a host emits heartbeats to every peer while it is
    /// touching the network.
    pub heartbeat_every: Duration,
    /// Phi (suspicion level) above which a silent peer is declared down.
    pub phi_threshold: f64,
    /// Silence below this duration never triggers suspicion, whatever phi
    /// says (grace floor against scheduling hiccups).
    pub min_silence: Duration,
    /// Silence beyond this duration always triggers suspicion, even with
    /// no arrival history (hard timeout backstop).
    pub max_silence: Duration,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            heartbeat_every: Duration::from_micros(500),
            phi_threshold: 8.0,
            min_silence: Duration::from_millis(50),
            max_silence: Duration::from_millis(500),
        }
    }
}

impl DetectorConfig {
    /// Sets the hard silence backstop (and scales the grace floor down to
    /// it if the floor would exceed it).
    pub fn with_max_silence(mut self, max_silence: Duration) -> DetectorConfig {
        self.max_silence = max_silence;
        self.min_silence = self.min_silence.min(max_silence);
        self
    }

    /// Sets the phi suspicion threshold.
    pub fn with_phi_threshold(mut self, phi: f64) -> DetectorConfig {
        self.phi_threshold = phi;
        self
    }
}

/// Per-peer arrival history.
#[derive(Clone, Copy, Debug)]
struct PeerHealth {
    /// Last time any frame arrived from the peer; `None` until the first
    /// suspicion query or arrival starts the clock.
    last_heard: Option<Instant>,
    /// EWMA of inter-arrival gaps, nanoseconds.
    mean_gap_ns: f64,
    /// Arrivals observed.
    samples: u64,
}

/// Tracks per-peer liveness from observed frame arrivals.
#[derive(Debug)]
pub(crate) struct FailureDetector {
    cfg: DetectorConfig,
    peers: Vec<PeerHealth>,
}

impl FailureDetector {
    pub(crate) fn new(cfg: DetectorConfig, world_size: usize) -> FailureDetector {
        FailureDetector {
            cfg,
            peers: vec![
                PeerHealth {
                    last_heard: None,
                    mean_gap_ns: 0.0,
                    samples: 0,
                };
                world_size
            ],
        }
    }

    pub(crate) fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Records that a frame (of any kind) arrived from `peer` at `now`.
    pub(crate) fn heard(&mut self, peer: usize, now: Instant) {
        let h = &mut self.peers[peer];
        if let Some(prev) = h.last_heard {
            let gap = now.saturating_duration_since(prev).as_nanos() as f64;
            h.mean_gap_ns = if h.samples == 0 {
                gap
            } else {
                (1.0 - GAP_ALPHA) * h.mean_gap_ns + GAP_ALPHA * gap
            };
            h.samples += 1;
        }
        h.last_heard = Some(now);
    }

    /// The current suspicion level for `peer`: 0 while fresh, growing
    /// without bound as silence stretches past the observed mean gap.
    pub(crate) fn phi(&self, peer: usize, now: Instant) -> f64 {
        let h = &self.peers[peer];
        let (Some(last), true) = (h.last_heard, h.samples >= MIN_SAMPLES) else {
            return 0.0;
        };
        let elapsed = now.saturating_duration_since(last).as_nanos() as f64;
        let mean = h.mean_gap_ns.max(1.0);
        elapsed / (mean * std::f64::consts::LN_10)
    }

    /// Whether `peer` should be declared down at `now`. The first query
    /// for a never-heard peer starts its silence clock instead of
    /// suspecting it (silence is measured from when we began waiting).
    pub(crate) fn suspect(&mut self, peer: usize, now: Instant) -> bool {
        let Some(last) = self.peers[peer].last_heard else {
            self.peers[peer].last_heard = Some(now);
            return false;
        };
        let elapsed = now.saturating_duration_since(last);
        if elapsed >= self.cfg.max_silence {
            return true;
        }
        elapsed >= self.cfg.min_silence && self.phi(peer, now) > self.cfg.phi_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> DetectorConfig {
        DetectorConfig {
            heartbeat_every: Duration::from_micros(100),
            phi_threshold: 4.0,
            min_silence: Duration::from_millis(1),
            max_silence: Duration::from_millis(20),
        }
    }

    #[test]
    fn fresh_peer_is_not_suspected_immediately() {
        let mut d = FailureDetector::new(fast_cfg(), 2);
        let now = Instant::now();
        assert!(!d.suspect(1, now), "first query only starts the clock");
        assert!(
            !d.suspect(1, now + Duration::from_micros(10)),
            "sub-floor silence is never suspicious"
        );
    }

    #[test]
    fn hard_backstop_fires_without_history() {
        let mut d = FailureDetector::new(fast_cfg(), 2);
        let t0 = Instant::now();
        assert!(!d.suspect(1, t0));
        assert!(d.suspect(1, t0 + Duration::from_millis(25)));
    }

    #[test]
    fn phi_grows_with_silence_and_fires_before_backstop() {
        let mut d = FailureDetector::new(fast_cfg(), 2);
        let t0 = Instant::now();
        // A steady 100µs heartbeat stream...
        for i in 0..20u32 {
            d.heard(1, t0 + i * Duration::from_micros(100));
        }
        let last = t0 + 19 * Duration::from_micros(100);
        assert!(d.phi(1, last + Duration::from_micros(100)) < 1.0);
        // ...then 5ms of silence: 50x the mean gap, far past phi=4.
        let silent = last + Duration::from_millis(5);
        assert!(d.phi(1, silent) > 4.0);
        assert!(
            d.suspect(1, silent),
            "phi path must fire before 20ms backstop"
        );
    }

    #[test]
    fn regular_arrivals_keep_phi_low() {
        let mut d = FailureDetector::new(fast_cfg(), 2);
        let t0 = Instant::now();
        for i in 0..100u32 {
            let now = t0 + i * Duration::from_micros(100);
            d.heard(1, now);
            assert!(!d.suspect(1, now), "live peer must never be suspected");
        }
    }

    #[test]
    fn arrival_after_silence_clears_suspicion() {
        let mut d = FailureDetector::new(fast_cfg(), 2);
        let t0 = Instant::now();
        assert!(!d.suspect(1, t0));
        let late = t0 + Duration::from_millis(30);
        assert!(d.suspect(1, late));
        d.heard(1, late);
        assert!(!d.suspect(1, late + Duration::from_micros(10)));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = DetectorConfig::default();
        assert!(cfg.min_silence < cfg.max_silence);
        assert!(cfg.heartbeat_every < cfg.min_silence);
        let tight = cfg.with_max_silence(Duration::from_millis(10));
        assert!(tight.min_silence <= tight.max_silence);
    }
}
