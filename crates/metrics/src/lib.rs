//! Typed metrics for the Gluon substrate: a per-host registry of counters,
//! gauges, and log₂ histograms; a per-round time-series recorder; and
//! export renderers (Prometheus text exposition via
//! [`MetricsHub::prometheus`], machine-readable JSON via [`json`]).
//!
//! The tracer (`gluon-trace`) answers "what happened, when" with bounded
//! span rings; this crate answers "how much, per host, per round" with
//! unbounded-precision counters that CI and calibration tooling can diff.
//! Every handle follows the tracer's no-op-when-disabled idiom: a
//! [`MetricsHub::disabled`] hub hands out handles whose every operation is
//! a branch on a `None` — safe to thread through the hot path
//! unconditionally.
//!
//! # Allocation discipline
//!
//! Registration ([`Registry::counter`] and friends) allocates and must
//! happen at setup time. After that, every publication — counter adds,
//! gauge stores, histogram observes, [`RoundSeries`] pushes into its
//! preallocated ring, [`PeerTable`] adds — is lock-free atomics or a short
//! uncontended mutex over preallocated storage, so a metrics-enabled sync
//! round performs **zero** heap allocations (enforced by the workspace's
//! alloc-guard test).
//!
//! # Attempt baselines
//!
//! A supervised run may execute several attempts (crash → restore →
//! replay). [`MetricsHub::begin_attempt`] snapshots every metric's current
//! value as its *baseline* and clears the round series; reads are
//! baseline-relative, so a report built after a recovered run describes
//! the final (successful) attempt — which determinism makes identical, in
//! every non-timing field, to a crash-free run.
//!
//! # Examples
//!
//! ```
//! use gluon_metrics::MetricsHub;
//!
//! let hub = MetricsHub::new(2);
//! let host0 = hub.host_registry(0);
//! let bytes = host0.counter("bytes_sent");
//! bytes.add(1024);
//! assert_eq!(host0.counter_value("bytes_sent"), 1024);
//! hub.begin_attempt();
//! assert_eq!(host0.counter_value("bytes_sent"), 0);
//! assert!(hub.prometheus().contains("gluon_bytes_sent"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of wire modes tracked by the per-mode byte/message counters —
/// the §4.2 mode bytes plus the codec-v2 compressed modes. Kept equal to
/// `gluon_trace::NUM_WIRE_MODES` (asserted by the core crate's tests).
pub const NUM_WIRE_MODES: usize = 9;

/// Display names of the wire modes, indexed by mode byte.
pub const WIRE_MODE_NAMES: [&str; NUM_WIRE_MODES] = [
    "empty",
    "dense",
    "bitvec",
    "indices",
    "gid_values",
    "idx_delta",
    "run_len",
    "same_idx",
    "same_run",
];

/// Number of per-round micro-stages sampled into [`RoundSample::stage_ns`].
/// Indices coincide with the first eight `gluon_trace::Stage` variants.
pub const NUM_ROUND_STAGES: usize = 8;

/// Display names of the round stages, indexed like
/// [`RoundSample::stage_ns`].
pub const ROUND_STAGE_NAMES: [&str; NUM_ROUND_STAGES] = [
    "extract",
    "memo_translate",
    "encode",
    "send",
    "reset",
    "recv_wait",
    "decode",
    "apply",
];

/// Index of the `recv_wait` stage in [`RoundSample::stage_ns`].
pub const RECV_WAIT_STAGE: usize = 5;

/// Number of log₂ buckets a [`Histogram`] tracks (bucket `i` counts
/// observations with `floor(log2(v)) == i`; zero lands in bucket 0).
pub const NUM_HISTOGRAM_BUCKETS: usize = 64;

/// Default per-host capacity of the round time-series ring.
pub const DEFAULT_ROUND_CAPACITY: usize = 4096;

// ---------------------------------------------------------------------------
// Metric cells and handles
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
    base: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicU64,
}

#[derive(Debug)]
struct HistCell {
    buckets: Vec<AtomicU64>,
    base_buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    base_count: AtomicU64,
    base_sum: AtomicU64,
}

impl HistCell {
    fn new() -> HistCell {
        HistCell {
            buckets: (0..NUM_HISTOGRAM_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            base_buckets: (0..NUM_HISTOGRAM_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            base_count: AtomicU64::new(0),
            base_sum: AtomicU64::new(0),
        }
    }
}

/// A monotonically increasing counter. Cheap to clone; clones share the
/// cell. A default-constructed counter is disabled: every operation is a
/// no-op and every read returns 0.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Value accumulated since the last [`MetricsHub::begin_attempt`]
    /// (equals [`Counter::total`] before the first rebaseline).
    pub fn value(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| {
            c.value
                .load(Ordering::Relaxed)
                .saturating_sub(c.base.load(Ordering::Relaxed))
        })
    }

    /// Absolute value accumulated over the cell's whole lifetime.
    pub fn total(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A last-write-wins (or high-water) gauge. Rebaselining resets it to 0.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if `v` is larger (high-water semantics).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A log₂ histogram: bucket `i` counts observations whose `floor(log2)`
/// is `i` (zero lands in bucket 0), plus a total count and sum.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cell: Option<Arc<HistCell>>,
}

/// The log₂ bucket index an observation of `v` lands in.
pub fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (63 - v.leading_zeros() as usize).min(NUM_HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.buckets[log2_bucket(v)].fetch_add(1, Ordering::Relaxed);
            c.count.fetch_add(1, Ordering::Relaxed);
            c.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Per-bucket counts since the last rebaseline.
    pub fn buckets(&self) -> [u64; NUM_HISTOGRAM_BUCKETS] {
        let mut out = [0u64; NUM_HISTOGRAM_BUCKETS];
        if let Some(c) = &self.cell {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = c.buckets[i]
                    .load(Ordering::Relaxed)
                    .saturating_sub(c.base_buckets[i].load(Ordering::Relaxed));
            }
        }
        out
    }

    /// Observation count since the last rebaseline.
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| {
            c.count
                .load(Ordering::Relaxed)
                .saturating_sub(c.base_count.load(Ordering::Relaxed))
        })
    }

    /// Observation sum since the last rebaseline.
    pub fn sum(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| {
            c.sum
                .load(Ordering::Relaxed)
                .saturating_sub(c.base_sum.load(Ordering::Relaxed))
        })
    }
}

/// A read-only snapshot of one metric's attempt-relative value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram buckets, count, and sum.
    Histogram {
        /// Per-log₂-bucket counts.
        buckets: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
    },
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistCell>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }

    fn rebaseline(&self) {
        match self {
            Metric::Counter(c) => {
                c.base
                    .store(c.value.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            Metric::Gauge(g) => g.value.store(0, Ordering::Relaxed),
            Metric::Histogram(h) => {
                for (b, base) in h.buckets.iter().zip(&h.base_buckets) {
                    base.store(b.load(Ordering::Relaxed), Ordering::Relaxed);
                }
                h.base_count
                    .store(h.count.load(Ordering::Relaxed), Ordering::Relaxed);
                h.base_sum
                    .store(h.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
    }

    fn read(&self) -> MetricValue {
        match self {
            Metric::Counter(c) => MetricValue::Counter(
                c.value
                    .load(Ordering::Relaxed)
                    .saturating_sub(c.base.load(Ordering::Relaxed)),
            ),
            Metric::Gauge(g) => MetricValue::Gauge(g.value.load(Ordering::Relaxed)),
            Metric::Histogram(h) => {
                let mut buckets = vec![0u64; NUM_HISTOGRAM_BUCKETS];
                for (i, slot) in buckets.iter_mut().enumerate() {
                    *slot = h.buckets[i]
                        .load(Ordering::Relaxed)
                        .saturating_sub(h.base_buckets[i].load(Ordering::Relaxed));
                }
                MetricValue::Histogram {
                    buckets,
                    count: h
                        .count
                        .load(Ordering::Relaxed)
                        .saturating_sub(h.base_count.load(Ordering::Relaxed)),
                    sum: h
                        .sum
                        .load(Ordering::Relaxed)
                        .saturating_sub(h.base_sum.load(Ordering::Relaxed)),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct RegistryInner {
    entries: Mutex<Vec<(&'static str, Metric)>>,
}

/// A named collection of metrics. Registration interns by name: asking for
/// the same name twice returns handles to the same cell, which is how
/// independently constructed publishers (the sync context and the reliable
/// transport, say) share a counter.
///
/// Cloning is cheap; clones register into the same collection. A
/// default-constructed registry is disabled and hands out disabled handles.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// The no-op registry.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-fetches) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &'static str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::default();
        };
        let mut entries = inner.entries.lock().expect("registry poisoned");
        if let Some((_, m)) = entries.iter().find(|(n, _)| *n == name) {
            match m {
                Metric::Counter(c) => {
                    return Counter {
                        cell: Some(c.clone()),
                    }
                }
                other => panic!("metric {name} already registered as a {}", other.kind()),
            }
        }
        let cell = Arc::new(CounterCell::default());
        entries.push((name, Metric::Counter(cell.clone())));
        Counter { cell: Some(cell) }
    }

    /// Registers (or re-fetches) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::default();
        };
        let mut entries = inner.entries.lock().expect("registry poisoned");
        if let Some((_, m)) = entries.iter().find(|(n, _)| *n == name) {
            match m {
                Metric::Gauge(g) => {
                    return Gauge {
                        cell: Some(g.clone()),
                    }
                }
                other => panic!("metric {name} already registered as a {}", other.kind()),
            }
        }
        let cell = Arc::new(GaugeCell::default());
        entries.push((name, Metric::Gauge(cell.clone())));
        Gauge { cell: Some(cell) }
    }

    /// Registers (or re-fetches) the log₂ histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::default();
        };
        let mut entries = inner.entries.lock().expect("registry poisoned");
        if let Some((_, m)) = entries.iter().find(|(n, _)| *n == name) {
            match m {
                Metric::Histogram(h) => {
                    return Histogram {
                        cell: Some(h.clone()),
                    };
                }
                other => panic!("metric {name} already registered as a {}", other.kind()),
            }
        }
        let cell = Arc::new(HistCell::new());
        entries.push((name, Metric::Histogram(cell.clone())));
        Histogram { cell: Some(cell) }
    }

    /// Attempt-relative values of every registered metric, in registration
    /// order.
    pub fn snapshot(&self) -> Vec<(&'static str, MetricValue)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let entries = inner.entries.lock().expect("registry poisoned");
        entries.iter().map(|(n, m)| (*n, m.read())).collect()
    }

    /// The attempt-relative value of counter `name` (0 when absent, not a
    /// counter, or the registry is disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let entries = inner.entries.lock().expect("registry poisoned");
        entries
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, m)| match m.read() {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Merges one externally captured metric into this registry.
    ///
    /// This is the ingestion half of [`Registry::snapshot`]: the
    /// multi-process launcher ships each worker's snapshot over the wire
    /// and folds it into the parent hub so a socket-cluster report is
    /// shaped exactly like an in-process one. Counters and histograms
    /// accumulate onto any existing value; gauges take the imported value.
    /// Names not seen before are registered on the fly (interned for the
    /// process lifetime, matching the `&'static str` registration API).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn import(&self, name: &str, value: &MetricValue) {
        let Some(inner) = &self.inner else { return };
        let mut entries = inner.entries.lock().expect("registry poisoned");
        let metric = match entries.iter().find(|(n, _)| *n == name) {
            Some((_, m)) => m.clone(),
            None => {
                let interned: &'static str = Box::leak(name.to_owned().into_boxed_str());
                let m = match value {
                    MetricValue::Counter(_) => Metric::Counter(Arc::new(CounterCell::default())),
                    MetricValue::Gauge(_) => Metric::Gauge(Arc::new(GaugeCell::default())),
                    MetricValue::Histogram { .. } => Metric::Histogram(Arc::new(HistCell::new())),
                };
                entries.push((interned, m.clone()));
                m
            }
        };
        drop(entries);
        match (&metric, value) {
            (Metric::Counter(c), MetricValue::Counter(v)) => {
                c.value.fetch_add(*v, Ordering::Relaxed);
            }
            (Metric::Gauge(g), MetricValue::Gauge(v)) => {
                g.value.store(*v, Ordering::Relaxed);
            }
            (
                Metric::Histogram(h),
                MetricValue::Histogram {
                    buckets,
                    count,
                    sum,
                },
            ) => {
                for (cell, v) in h.buckets.iter().zip(buckets) {
                    cell.fetch_add(*v, Ordering::Relaxed);
                }
                h.count.fetch_add(*count, Ordering::Relaxed);
                h.sum.fetch_add(*sum, Ordering::Relaxed);
            }
            (m, _) => panic!("metric {name} already registered as a {}", m.kind()),
        }
    }

    fn rebaseline(&self) {
        let Some(inner) = &self.inner else { return };
        let entries = inner.entries.lock().expect("registry poisoned");
        for (_, m) in entries.iter() {
            m.rebaseline();
        }
    }
}

// ---------------------------------------------------------------------------
// Per-peer attribution table
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct PeerCell {
    send_ns: AtomicU64,
    recv_wait_ns: AtomicU64,
    send_base: AtomicU64,
    recv_base: AtomicU64,
}

/// Per-peer measured communication time: how long this host spent in the
/// `send` and `recv_wait` stages directed at each peer. Preallocated to
/// the world size, so steady-state adds are a single atomic op.
#[derive(Clone, Debug, Default)]
pub struct PeerTable {
    inner: Option<Arc<Vec<PeerCell>>>,
}

impl PeerTable {
    fn new(world_size: usize) -> PeerTable {
        PeerTable {
            inner: Some(Arc::new(
                (0..world_size).map(|_| PeerCell::default()).collect(),
            )),
        }
    }

    /// Number of peers the table is sized for (0 when disabled).
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |v| v.len())
    }

    /// Whether the table is disabled or sized for zero peers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attributes `ns` nanoseconds of send-stage time to `peer`.
    #[inline]
    pub fn add_send_ns(&self, peer: usize, ns: u64) {
        if let Some(v) = &self.inner {
            v[peer].send_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Attributes `ns` nanoseconds of recv-wait time to `peer`.
    #[inline]
    pub fn add_recv_wait_ns(&self, peer: usize, ns: u64) {
        if let Some(v) = &self.inner {
            v[peer].recv_wait_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Attempt-relative send-stage nanoseconds attributed to `peer`.
    pub fn send_ns(&self, peer: usize) -> u64 {
        self.inner.as_ref().map_or(0, |v| {
            v[peer]
                .send_ns
                .load(Ordering::Relaxed)
                .saturating_sub(v[peer].send_base.load(Ordering::Relaxed))
        })
    }

    /// Attempt-relative recv-wait nanoseconds attributed to `peer`.
    pub fn recv_wait_ns(&self, peer: usize) -> u64 {
        self.inner.as_ref().map_or(0, |v| {
            v[peer]
                .recv_wait_ns
                .load(Ordering::Relaxed)
                .saturating_sub(v[peer].recv_base.load(Ordering::Relaxed))
        })
    }

    fn rebaseline(&self) {
        if let Some(v) = &self.inner {
            for c in v.iter() {
                c.send_base
                    .store(c.send_ns.load(Ordering::Relaxed), Ordering::Relaxed);
                c.recv_base
                    .store(c.recv_wait_ns.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Round time-series
// ---------------------------------------------------------------------------

/// One sampled sync round: what the recorder captures at the end of every
/// `sync` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundSample {
    /// 0-based sync-phase sequence number on the host.
    pub round: u64,
    /// Nanoseconds spent in each micro-stage this round, indexed by
    /// [`ROUND_STAGE_NAMES`].
    pub stage_ns: [u64; NUM_ROUND_STAGES],
    /// Payload bytes sent this round, per wire mode.
    pub mode_bytes: [u64; NUM_WIRE_MODES],
    /// Total payload bytes sent this round.
    pub bytes_sent: u64,
    /// Sync messages sent this round.
    pub messages_sent: u64,
    /// Frames retransmitted by the reliability layer during this round.
    pub retransmits: u64,
    /// Send-buffer pool hits this round.
    pub pool_hits: u64,
    /// Send-buffer pool misses this round.
    pub pool_misses: u64,
    /// Nanoseconds blocked waiting on peers this round (equals
    /// `stage_ns[RECV_WAIT_STAGE]`).
    pub recv_wait_ns: u64,
}

#[derive(Debug)]
struct SampleRing {
    buf: Vec<RoundSample>,
    cap: usize,
    start: usize,
    len: usize,
    dropped: u64,
}

impl SampleRing {
    fn push(&mut self, s: RoundSample) {
        if self.len < self.cap {
            let idx = (self.start + self.len) % self.cap;
            if idx == self.buf.len() {
                // Still filling the preallocated capacity: push never
                // reallocates because `buf` reserved `cap` up front.
                self.buf.push(s);
            } else {
                self.buf[idx] = s;
            }
            self.len += 1;
        } else {
            self.buf[self.start] = s;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

#[derive(Debug)]
struct SeriesInner {
    ring: Mutex<SampleRing>,
}

/// The per-host round recorder: a bounded, preallocated ring of
/// [`RoundSample`] rows. Once full it keeps the most recent rows and
/// counts the evictions in [`RoundSeries::dropped`] — a truncated series
/// never masquerades as a complete one.
#[derive(Clone, Debug, Default)]
pub struct RoundSeries {
    inner: Option<Arc<SeriesInner>>,
}

impl RoundSeries {
    fn new(cap: usize) -> RoundSeries {
        let cap = cap.max(1);
        RoundSeries {
            inner: Some(Arc::new(SeriesInner {
                ring: Mutex::new(SampleRing {
                    buf: Vec::with_capacity(cap),
                    cap,
                    start: 0,
                    len: 0,
                    dropped: 0,
                }),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends one row (evicting the oldest when full).
    pub fn push(&self, sample: RoundSample) {
        if let Some(inner) = &self.inner {
            inner.ring.lock().expect("series poisoned").push(sample);
        }
    }

    /// The retained rows, oldest first.
    pub fn rows(&self) -> Vec<RoundSample> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let ring = inner.ring.lock().expect("series poisoned");
        (0..ring.len)
            .map(|i| ring.buf[(ring.start + i) % ring.cap])
            .collect()
    }

    /// Rows evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.ring.lock().expect("series poisoned").dropped)
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.ring.lock().expect("series poisoned").cap)
    }

    fn clear(&self) {
        if let Some(inner) = &self.inner {
            let mut ring = inner.ring.lock().expect("series poisoned");
            ring.start = 0;
            ring.len = 0;
            ring.dropped = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// Hub
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct HostSlot {
    registry: Registry,
    series: RoundSeries,
    peers: PeerTable,
}

#[derive(Debug)]
struct HubInner {
    hosts: Vec<HostSlot>,
    cluster: Registry,
}

/// The run-wide metrics root: one [`Registry`] + [`RoundSeries`] +
/// [`PeerTable`] per host, plus a cluster-level registry the supervisor
/// publishes into. Cheap to clone; clones share everything.
#[derive(Clone, Debug, Default)]
pub struct MetricsHub {
    inner: Option<Arc<HubInner>>,
}

impl MetricsHub {
    /// An enabled hub for `world_size` hosts with the default round-series
    /// capacity.
    pub fn new(world_size: usize) -> MetricsHub {
        MetricsHub::with_round_capacity(world_size, DEFAULT_ROUND_CAPACITY)
    }

    /// As [`MetricsHub::new`] with an explicit per-host round-series ring
    /// capacity.
    pub fn with_round_capacity(world_size: usize, capacity: usize) -> MetricsHub {
        MetricsHub {
            inner: Some(Arc::new(HubInner {
                hosts: (0..world_size)
                    .map(|_| HostSlot {
                        registry: Registry::new(),
                        series: RoundSeries::new(capacity),
                        peers: PeerTable::new(world_size),
                    })
                    .collect(),
                cluster: Registry::new(),
            })),
        }
    }

    /// The no-op hub: every handle it hands out is disabled.
    pub fn disabled() -> MetricsHub {
        MetricsHub { inner: None }
    }

    /// Whether this hub records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of hosts the hub was sized for (0 when disabled).
    pub fn world_size(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.hosts.len())
    }

    /// The bundled per-host handles for `rank` (all disabled when the hub
    /// is disabled; `rank` is ignored in that case).
    pub fn host(&self, rank: usize) -> HostMetrics {
        match &self.inner {
            Some(i) => HostMetrics {
                registry: i.hosts[rank].registry.clone(),
                series: i.hosts[rank].series.clone(),
                peers: i.hosts[rank].peers.clone(),
            },
            None => HostMetrics::disabled(),
        }
    }

    /// Host `rank`'s registry (disabled when the hub is disabled).
    pub fn host_registry(&self, rank: usize) -> Registry {
        match &self.inner {
            Some(i) => i.hosts[rank].registry.clone(),
            None => Registry::disabled(),
        }
    }

    /// The cluster-level registry (supervisor counters: recoveries,
    /// attempts).
    pub fn cluster(&self) -> Registry {
        match &self.inner {
            Some(i) => i.cluster.clone(),
            None => Registry::disabled(),
        }
    }

    /// Marks the start of a (re)attempt: snapshots every metric's current
    /// value as its baseline and clears every round series, so subsequent
    /// reads describe only the newest attempt.
    pub fn begin_attempt(&self) {
        let Some(i) = &self.inner else { return };
        for h in &i.hosts {
            h.registry.rebaseline();
            h.series.clear();
            h.peers.rebaseline();
        }
        i.cluster.rebaseline();
    }

    /// Sums the attempt-relative value of counter `name` across all host
    /// registries.
    pub fn counter_across_hosts(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.hosts.iter().map(|h| h.registry.counter_value(name)).sum()
        })
    }

    /// Renders every metric in Prometheus text exposition format: one
    /// `# TYPE` header per metric name, one `{host="N"}`-labelled sample
    /// per host (histograms expand into cumulative `_bucket` series plus
    /// `_sum`/`_count`), cluster metrics unlabelled. Values are
    /// attempt-relative. Empty string when disabled.
    pub fn prometheus(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let mut out = String::new();
        // Union of metric names across hosts, in first-seen order so the
        // exposition is stable for a deterministic run.
        let mut names: Vec<(&'static str, &'static str)> = Vec::new();
        let per_host: Vec<Vec<(&'static str, MetricValue)>> =
            inner.hosts.iter().map(|h| h.registry.snapshot()).collect();
        for snap in &per_host {
            for (name, value) in snap {
                if !names.iter().any(|(n, _)| n == name) {
                    names.push((name, metric_value_kind(value)));
                }
            }
        }
        for (name, kind) in &names {
            out.push_str(&format!("# TYPE gluon_{name} {kind}\n"));
            for (host, snap) in per_host.iter().enumerate() {
                let Some((_, value)) = snap.iter().find(|(n, _)| n == name) else {
                    continue;
                };
                render_prom_sample(&mut out, name, &format!("host=\"{host}\""), value);
            }
        }
        let cluster = inner.cluster.snapshot();
        for (name, value) in &cluster {
            out.push_str(&format!(
                "# TYPE gluon_{name} {}\n",
                metric_value_kind(value)
            ));
            render_prom_sample(&mut out, name, "", value);
        }
        out
    }
}

fn metric_value_kind(v: &MetricValue) -> &'static str {
    match v {
        MetricValue::Counter(_) => "counter",
        MetricValue::Gauge(_) => "gauge",
        MetricValue::Histogram { .. } => "histogram",
    }
}

fn render_prom_sample(out: &mut String, name: &str, labels: &str, value: &MetricValue) {
    let brace = |extra: &str| -> String {
        match (labels.is_empty(), extra.is_empty()) {
            (true, true) => String::new(),
            (true, false) => format!("{{{extra}}}"),
            (false, true) => format!("{{{labels}}}"),
            (false, false) => format!("{{{labels},{extra}}}"),
        }
    };
    match value {
        MetricValue::Counter(v) | MetricValue::Gauge(v) => {
            out.push_str(&format!("gluon_{name}{} {v}\n", brace("")));
        }
        MetricValue::Histogram {
            buckets,
            count,
            sum,
        } => {
            let last = buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
            let mut cum = 0u64;
            for (i, b) in buckets.iter().take(last).enumerate() {
                cum += b;
                // Bucket `i` holds values with floor(log2(v)) == i, whose
                // maximum is 2^(i+1) - 1.
                let le = (1u128 << (i + 1)) - 1;
                out.push_str(&format!(
                    "gluon_{name}_bucket{} {cum}\n",
                    brace(&format!("le=\"{le}\""))
                ));
            }
            out.push_str(&format!(
                "gluon_{name}_bucket{} {count}\n",
                brace("le=\"+Inf\"")
            ));
            out.push_str(&format!("gluon_{name}_sum{} {sum}\n", brace("")));
            out.push_str(&format!("gluon_{name}_count{} {count}\n", brace("")));
        }
    }
}

/// The per-host bundle a publisher needs: the registry plus the round
/// series and peer table. Obtained from [`MetricsHub::host`].
#[derive(Clone, Debug, Default)]
pub struct HostMetrics {
    registry: Registry,
    series: RoundSeries,
    peers: PeerTable,
}

impl HostMetrics {
    /// The all-disabled bundle.
    pub fn disabled() -> HostMetrics {
        HostMetrics::default()
    }

    /// Whether the bundle records anything.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// The host's registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The host's round time-series.
    pub fn series(&self) -> &RoundSeries {
        &self.series
    }

    /// The host's per-peer attribution table.
    pub fn peers(&self) -> &PeerTable {
        &self.peers
    }
}

// ---------------------------------------------------------------------------
// Pre-registered publisher bundles
// ---------------------------------------------------------------------------

/// Names of the per-stage cumulative time counters, aligned with
/// [`ROUND_STAGE_NAMES`].
const STAGE_COUNTER_NAMES: [&str; NUM_ROUND_STAGES] = [
    "stage_extract_ns",
    "stage_memo_translate_ns",
    "stage_encode_ns",
    "stage_send_ns",
    "stage_reset_ns",
    "stage_recv_wait_ns",
    "stage_decode_ns",
    "stage_apply_ns",
];

const MODE_MSG_COUNTER_NAMES: [&str; NUM_WIRE_MODES] = [
    "wire_msgs_empty",
    "wire_msgs_dense",
    "wire_msgs_bitvec",
    "wire_msgs_indices",
    "wire_msgs_gid_values",
    "wire_msgs_idx_delta",
    "wire_msgs_run_len",
    "wire_msgs_same_idx",
    "wire_msgs_same_run",
];

const MODE_BYTE_COUNTER_NAMES: [&str; NUM_WIRE_MODES] = [
    "wire_bytes_empty",
    "wire_bytes_dense",
    "wire_bytes_bitvec",
    "wire_bytes_indices",
    "wire_bytes_gid_values",
    "wire_bytes_idx_delta",
    "wire_bytes_run_len",
    "wire_bytes_same_idx",
    "wire_bytes_same_run",
];

/// Snapshot of the cumulative per-round counters at the start of one sync
/// round; [`SyncMetrics::round_end`] subtracts it to build the round's
/// [`RoundSample`]. Plain `Copy` data — taking one allocates nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundMark {
    mode_bytes: [u64; NUM_WIRE_MODES],
    bytes: u64,
    messages: u64,
    retransmits: u64,
    pool_hits: u64,
    pool_misses: u64,
}

/// The sync runtime's pre-registered per-host metrics: wire-mode traffic,
/// stage times, pool hit/miss, rounds, decode errors, and the round
/// recorder. Constructed once per context via [`SyncMetrics::register`];
/// every publication afterwards is allocation-free.
#[derive(Clone, Debug, Default)]
pub struct SyncMetrics {
    series: RoundSeries,
    peers: PeerTable,
    sync_rounds: Counter,
    collective_ops: Counter,
    bytes_sent: Counter,
    messages_sent: Counter,
    pool_hits: Counter,
    pool_misses: Counter,
    decode_errors: Counter,
    checkpoints_saved: Counter,
    stage_ns: [Counter; NUM_ROUND_STAGES],
    mode_msgs: [Counter; NUM_WIRE_MODES],
    mode_bytes: [Counter; NUM_WIRE_MODES],
    payload_bytes: Histogram,
    /// Shared (by name) with the reliability layer's [`NetMetrics`].
    retransmits: Counter,
}

impl SyncMetrics {
    /// The all-disabled bundle.
    pub fn disabled() -> SyncMetrics {
        SyncMetrics::default()
    }

    /// Registers the sync runtime's metrics on `host`'s registry.
    pub fn register(host: &HostMetrics) -> SyncMetrics {
        let r = host.registry();
        SyncMetrics {
            series: host.series().clone(),
            peers: host.peers().clone(),
            sync_rounds: r.counter("sync_rounds"),
            collective_ops: r.counter("collective_ops"),
            bytes_sent: r.counter("bytes_sent"),
            messages_sent: r.counter("messages_sent"),
            pool_hits: r.counter("pool_hits"),
            pool_misses: r.counter("pool_misses"),
            decode_errors: r.counter("decode_errors"),
            checkpoints_saved: r.counter("checkpoints_saved"),
            stage_ns: STAGE_COUNTER_NAMES.map(|n| r.counter(n)),
            mode_msgs: MODE_MSG_COUNTER_NAMES.map(|n| r.counter(n)),
            mode_bytes: MODE_BYTE_COUNTER_NAMES.map(|n| r.counter(n)),
            payload_bytes: r.histogram("payload_bytes"),
            retransmits: r.counter("retransmits"),
        }
    }

    /// Whether this bundle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.series.is_enabled()
    }

    /// The per-peer attribution table (for the segment clock).
    pub fn peers(&self) -> &PeerTable {
        &self.peers
    }

    /// Books one outgoing sync payload: `mode` is the wire-mode byte,
    /// `len` the payload length in bytes.
    #[inline]
    pub fn on_payload(&self, mode: u8, len: u64) {
        if !self.is_enabled() {
            return;
        }
        let m = (mode as usize).min(NUM_WIRE_MODES - 1);
        self.mode_msgs[m].incr();
        self.mode_bytes[m].add(len);
        self.bytes_sent.add(len);
        self.messages_sent.incr();
        self.payload_bytes.observe(len);
    }

    /// Books a send-buffer pool hit.
    #[inline]
    pub fn pool_hit(&self) {
        self.pool_hits.incr();
    }

    /// Books a send-buffer pool miss.
    #[inline]
    pub fn pool_miss(&self) {
        self.pool_misses.incr();
    }

    /// Books one undecodable payload.
    #[inline]
    pub fn on_decode_error(&self) {
        self.decode_errors.incr();
    }

    /// Books one collective operation (termination detection, global sum).
    #[inline]
    pub fn on_collective(&self) {
        self.collective_ops.incr();
    }

    /// Books one checkpoint snapshot.
    #[inline]
    pub fn on_checkpoint(&self) {
        self.checkpoints_saved.incr();
    }

    /// Snapshots the cumulative counters at the start of a sync round.
    pub fn round_begin(&self) -> RoundMark {
        if !self.is_enabled() {
            return RoundMark::default();
        }
        let mut mode_bytes = [0u64; NUM_WIRE_MODES];
        for (slot, c) in mode_bytes.iter_mut().zip(&self.mode_bytes) {
            *slot = c.total();
        }
        RoundMark {
            mode_bytes,
            bytes: self.bytes_sent.total(),
            messages: self.messages_sent.total(),
            retransmits: self.retransmits.total(),
            pool_hits: self.pool_hits.total(),
            pool_misses: self.pool_misses.total(),
        }
    }

    /// Completes one sync round: publishes the stage durations into the
    /// cumulative stage counters and appends the round's [`RoundSample`]
    /// (deltas against `mark`) to the series.
    pub fn round_end(&self, mark: RoundMark, round: u64, stage_ns: [u64; NUM_ROUND_STAGES]) {
        if !self.is_enabled() {
            return;
        }
        for (c, ns) in self.stage_ns.iter().zip(stage_ns) {
            c.add(ns);
        }
        self.sync_rounds.incr();
        let mut mode_bytes = [0u64; NUM_WIRE_MODES];
        for (i, slot) in mode_bytes.iter_mut().enumerate() {
            *slot = self.mode_bytes[i].total() - mark.mode_bytes[i];
        }
        self.series.push(RoundSample {
            round,
            stage_ns,
            mode_bytes,
            bytes_sent: self.bytes_sent.total() - mark.bytes,
            messages_sent: self.messages_sent.total() - mark.messages,
            retransmits: self.retransmits.total() - mark.retransmits,
            pool_hits: self.pool_hits.total() - mark.pool_hits,
            pool_misses: self.pool_misses.total() - mark.pool_misses,
            recv_wait_ns: stage_ns[RECV_WAIT_STAGE],
        });
    }
}

/// The reliability layer's pre-registered metrics: retransmissions,
/// duplicate suppression, CRC rejections, peers declared down.
#[derive(Clone, Debug, Default)]
pub struct NetMetrics {
    retransmits: Counter,
    retransmit_bytes: Counter,
    dups_suppressed: Counter,
    crc_rejections: Counter,
    peers_down: Counter,
}

impl NetMetrics {
    /// The all-disabled bundle.
    pub fn disabled() -> NetMetrics {
        NetMetrics::default()
    }

    /// Registers the reliability layer's metrics on `registry`. The
    /// `retransmits` counter is shared by name with [`SyncMetrics`], which
    /// is how the round recorder attributes retransmissions to rounds.
    pub fn register(registry: &Registry) -> NetMetrics {
        NetMetrics {
            retransmits: registry.counter("retransmits"),
            retransmit_bytes: registry.counter("retransmit_bytes"),
            dups_suppressed: registry.counter("dups_suppressed"),
            crc_rejections: registry.counter("crc_rejections"),
            peers_down: registry.counter("peers_down"),
        }
    }

    /// Books one retransmitted frame of `bytes` bytes.
    #[inline]
    pub fn on_retransmit(&self, bytes: u64) {
        self.retransmits.incr();
        self.retransmit_bytes.add(bytes);
    }

    /// Books one suppressed duplicate frame.
    #[inline]
    pub fn on_dup_suppressed(&self) {
        self.dups_suppressed.incr();
    }

    /// Books one CRC-rejected frame.
    #[inline]
    pub fn on_crc_rejection(&self) {
        self.crc_rejections.incr();
    }

    /// Books one peer declared dead.
    #[inline]
    pub fn on_peer_down(&self) {
        self.peers_down.incr();
    }
}

/// The exec pool's pre-registered metrics: parallel operations and the
/// sequential/critical-path work split.
#[derive(Clone, Debug, Default)]
pub struct ExecMetrics {
    parallel_ops: Counter,
    seq_work: Counter,
    crit_work: Counter,
}

impl ExecMetrics {
    /// The all-disabled bundle.
    pub fn disabled() -> ExecMetrics {
        ExecMetrics::default()
    }

    /// Registers the pool's metrics on `registry`.
    pub fn register(registry: &Registry) -> ExecMetrics {
        ExecMetrics {
            parallel_ops: registry.counter("pool_parallel_ops"),
            seq_work: registry.counter("pool_seq_work"),
            crit_work: registry.counter("pool_crit_work"),
        }
    }

    /// Books one metered pool operation: `seq` total work units whose
    /// critical path was `crit` units.
    #[inline]
    pub fn on_work(&self, seq: u64, crit: u64) {
        self.parallel_ops.incr();
        self.seq_work.add(seq);
        self.crit_work.add(crit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_noops() {
        let hub = MetricsHub::disabled();
        assert!(!hub.is_enabled());
        let host = hub.host(0);
        assert!(!host.is_enabled());
        let c = host.registry().counter("x");
        c.add(7);
        assert_eq!(c.value(), 0);
        let sm = SyncMetrics::register(&host);
        sm.on_payload(1, 100);
        sm.round_end(sm.round_begin(), 0, [0; NUM_ROUND_STAGES]);
        assert!(sm.peers().is_empty());
        assert_eq!(hub.prometheus(), "");
    }

    #[test]
    fn counters_intern_by_name() {
        let r = Registry::new();
        let a = r.counter("n");
        let b = r.counter("n");
        a.add(3);
        b.add(4);
        assert_eq!(a.value(), 7);
        assert_eq!(r.counter_value("n"), 7);
    }

    #[test]
    fn import_merges_snapshots_across_registries() {
        let src = Registry::new();
        src.counter("rounds").add(7);
        src.gauge("depth").set(9);
        let h = src.histogram("payload");
        h.observe(3);
        h.observe(300);

        let dst = Registry::new();
        dst.counter("rounds").add(1); // accumulates under import
        for (name, value) in src.snapshot() {
            dst.import(name, &value);
        }
        // Re-import into the same names a second time: counters and
        // histograms add, gauges overwrite.
        for (name, value) in src.snapshot() {
            dst.import(name, &value);
        }
        assert_eq!(dst.counter_value("rounds"), 1 + 7 + 7);
        let snap = dst.snapshot();
        let get = |n: &str| snap.iter().find(|(k, _)| *k == n).unwrap().1.clone();
        assert_eq!(get("depth"), MetricValue::Gauge(9));
        match get("payload") {
            MetricValue::Histogram {
                buckets,
                count,
                sum,
            } => {
                assert_eq!(count, 4);
                assert_eq!(sum, 2 * 303);
                assert_eq!(buckets[log2_bucket(3)], 2);
                assert_eq!(buckets[log2_bucket(300)], 2);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn import_kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("n");
        r.import("n", &MetricValue::Gauge(1));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("n");
        let _ = r.gauge("n");
    }

    #[test]
    fn rebaseline_resets_reads_but_not_totals() {
        let hub = MetricsHub::new(1);
        let c = hub.host_registry(0).counter("c");
        let h = hub.host_registry(0).histogram("h");
        c.add(10);
        h.observe(5);
        hub.begin_attempt();
        assert_eq!(c.value(), 0);
        assert_eq!(c.total(), 10);
        assert_eq!(h.count(), 0);
        c.add(2);
        h.observe(9);
        assert_eq!(c.value(), 2);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 9);
        assert_eq!(h.buckets()[3], 1);
    }

    #[test]
    fn log2_buckets_match_convention() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 1);
        assert_eq!(log2_bucket(4), 2);
        assert_eq!(log2_bucket(u64::MAX), 63);
    }

    #[test]
    fn round_series_wraps_and_counts_drops() {
        let s = RoundSeries::new(3);
        for i in 0..5u64 {
            s.push(RoundSample {
                round: i,
                ..RoundSample::default()
            });
        }
        let rows = s.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows.iter().map(|r| r.round).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.capacity(), 3);
    }

    #[test]
    fn sync_metrics_rounds_produce_delta_rows() {
        let hub = MetricsHub::new(2);
        let sm = SyncMetrics::register(&hub.host(0));
        let mark = sm.round_begin();
        sm.on_payload(1, 100);
        sm.on_payload(3, 50);
        sm.pool_hit();
        let mut stage = [0u64; NUM_ROUND_STAGES];
        stage[RECV_WAIT_STAGE] = 77;
        sm.round_end(mark, 0, stage);
        let mark = sm.round_begin();
        sm.on_payload(1, 10);
        sm.pool_miss();
        sm.round_end(mark, 1, [0; NUM_ROUND_STAGES]);
        let rows = hub.host(0).series().rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].bytes_sent, 150);
        assert_eq!(rows[0].messages_sent, 2);
        assert_eq!(rows[0].mode_bytes[1], 100);
        assert_eq!(rows[0].mode_bytes[3], 50);
        assert_eq!(rows[0].pool_hits, 1);
        assert_eq!(rows[0].recv_wait_ns, 77);
        assert_eq!(rows[1].bytes_sent, 10);
        assert_eq!(rows[1].pool_misses, 1);
        assert_eq!(hub.host_registry(0).counter_value("sync_rounds"), 2);
        assert_eq!(hub.counter_across_hosts("bytes_sent"), 160);
    }

    #[test]
    fn shared_retransmit_counter_feeds_rounds() {
        let hub = MetricsHub::new(1);
        let sm = SyncMetrics::register(&hub.host(0));
        let nm = NetMetrics::register(&hub.host_registry(0));
        let mark = sm.round_begin();
        nm.on_retransmit(64);
        nm.on_retransmit(64);
        sm.round_end(mark, 0, [0; NUM_ROUND_STAGES]);
        assert_eq!(hub.host(0).series().rows()[0].retransmits, 2);
        assert_eq!(hub.host_registry(0).counter_value("retransmit_bytes"), 128);
    }

    #[test]
    fn peer_table_attributes_and_rebaselines() {
        let hub = MetricsHub::new(3);
        let peers = hub.host(1).peers().clone();
        assert_eq!(peers.len(), 3);
        peers.add_send_ns(2, 10);
        peers.add_recv_wait_ns(2, 20);
        assert_eq!(peers.send_ns(2), 10);
        assert_eq!(peers.recv_wait_ns(2), 20);
        hub.begin_attempt();
        assert_eq!(peers.send_ns(2), 0);
        peers.add_send_ns(0, 5);
        assert_eq!(peers.send_ns(0), 5);
    }

    #[test]
    fn prometheus_renders_counters_and_histograms() {
        let hub = MetricsHub::new(2);
        hub.host_registry(0).counter("bytes_sent").add(100);
        hub.host_registry(1).counter("bytes_sent").add(50);
        let h = hub.host_registry(0).histogram("payload_bytes");
        h.observe(3);
        h.observe(100);
        hub.cluster().counter("recoveries").incr();
        let text = hub.prometheus();
        assert!(text.contains("# TYPE gluon_bytes_sent counter\n"));
        assert!(text.contains("gluon_bytes_sent{host=\"0\"} 100\n"));
        assert!(text.contains("gluon_bytes_sent{host=\"1\"} 50\n"));
        assert!(text.contains("# TYPE gluon_payload_bytes histogram\n"));
        assert!(text.contains("gluon_payload_bytes_bucket{host=\"0\",le=\"3\"} 1\n"));
        assert!(text.contains("gluon_payload_bytes_bucket{host=\"0\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("gluon_payload_bytes_sum{host=\"0\"} 103\n"));
        assert!(text.contains("gluon_recoveries 1\n"));
    }

    #[test]
    fn exec_metrics_accumulate() {
        let hub = MetricsHub::new(1);
        let em = ExecMetrics::register(&hub.host_registry(0));
        em.on_work(100, 30);
        em.on_work(10, 10);
        let r = hub.host_registry(0);
        assert_eq!(r.counter_value("pool_parallel_ops"), 2);
        assert_eq!(r.counter_value("pool_seq_work"), 110);
        assert_eq!(r.counter_value("pool_crit_work"), 40);
    }

    #[test]
    fn begin_attempt_clears_series() {
        let hub = MetricsHub::new(1);
        let s = hub.host(0).series().clone();
        s.push(RoundSample::default());
        assert_eq!(s.rows().len(), 1);
        hub.begin_attempt();
        assert_eq!(s.rows().len(), 0);
        assert_eq!(s.dropped(), 0);
    }
}
