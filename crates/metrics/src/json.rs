//! A minimal JSON tree: emitter **and** parser, shared by the metrics
//! exports, the harness binaries, and the bench regression gate.
//!
//! Hand-rolled on purpose: the workspace vendors no JSON dependency, and
//! the consumers only need a small, strict subset — objects with
//! insertion-ordered keys, arrays, strings, booleans, `null`, unsigned
//! integers, and finite floats. The parser accepts exactly what
//! [`Json::render`] emits (plus arbitrary whitespace, signed integers, and
//! exponent notation), and rejects everything else with a positioned
//! [`ParseError`].
//!
//! This module started life in `gluon-bench`; it moved here so `RunReport`
//! (in `gluon-algos`) and the gate binary can use it without depending on
//! the bench crate. `gluon_bench::json` re-exports it, so existing imports
//! keep working.

/// A JSON value tree. Build with the `From` impls and [`Json::obj`] /
/// [`Json::Arr`], serialize with [`Json::render`], read back with
/// [`Json::parse`].
///
/// # Examples
///
/// ```
/// use gluon_metrics::json::Json;
///
/// let v = Json::obj([("bench", Json::from("bfs")), ("bytes", Json::from(1024u64))]);
/// assert_eq!(v.render(), "{\"bench\": \"bfs\", \"bytes\": 1024}");
/// assert_eq!(Json::parse(&v.render()).unwrap(), v);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (emitted without a decimal point).
    UInt(u64),
    /// A float; non-finite values are emitted as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes the tree to a JSON string (single line, `", "` / `": "`
    /// separators).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    // `Display` for f64 never uses exponent notation and
                    // round-trips, so the text is always valid JSON.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Integers without sign, fraction, or
    /// exponent parse as [`Json::UInt`]; everything else numeric parses as
    /// [`Json::Num`]. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` unless this is an object containing
    /// `key`).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (accepts `UInt`, and `Num` when it is a
    /// non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` (accepts `UInt` and `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items (`None` unless this is an array).
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields in insertion order (`None` unless this is an
    /// object).
    pub fn fields(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Returns a copy of the tree with every object field whose key
    /// `drop` accepts removed, recursively (arrays are pruned
    /// element-wise; non-containers pass through). Used to strip timing
    /// fields before comparing two reports for structural identity.
    pub fn prune(&self, drop: &dyn Fn(&str) -> bool) -> Json {
        match self {
            Json::Obj(fields) => Json::Obj(
                fields
                    .iter()
                    .filter(|(k, _)| !drop(k))
                    .map(|(k, v)| (k.clone(), v.prune(drop)))
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.iter().map(|v| v.prune(drop)).collect()),
            other => other.clone(),
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos..self.pos + 4];
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // emitter; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the utf8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float && !text.starts_with('-') {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Json::obj([
            ("name", Json::from("rmat16")),
            ("hosts", Json::from(4u64)),
            ("secs", Json::from(0.5f64)),
            ("rows", Json::Arr(vec![Json::from(1u64), Json::Null])),
            ("ok", Json::from(true)),
        ]);
        assert_eq!(
            v.render(),
            "{\"name\": \"rmat16\", \"hosts\": 4, \"secs\": 0.5, \
             \"rows\": [1, null], \"ok\": true}"
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::from("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_round_trips_render() {
        let v = Json::obj([
            ("name", Json::from("rmat16")),
            ("hosts", Json::from(4u64)),
            ("secs", Json::from(0.5f64)),
            ("neg", Json::Num(-3.25)),
            ("rows", Json::Arr(vec![Json::from(1u64), Json::Null])),
            ("ok", Json::from(true)),
            ("note", Json::from("a\"b\\c\nd")),
            ("empty_obj", Json::obj::<&str>([])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_accepts_whitespace_and_exponents() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e2 , -3 ] } ").unwrap();
        let rows = v.get("a").unwrap().items().unwrap();
        assert_eq!(rows[0].as_u64(), Some(1));
        assert_eq!(rows[1].as_f64(), Some(250.0));
        assert_eq!(rows[2].as_f64(), Some(-3.0));
        assert_eq!(rows[2].as_u64(), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nulll").is_err());
        let err = Json::parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn parse_decodes_escapes_and_unicode() {
        let v = Json::parse("\"a\\u0041\\n\\t\\\\ б\"").unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\\ б"));
    }

    #[test]
    fn accessors_navigate() {
        let v = Json::parse("{\"a\": {\"b\": [true, \"x\"]}}").unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap();
        assert_eq!(arr.items().unwrap()[0].as_bool(), Some(true));
        assert_eq!(arr.items().unwrap()[1].as_str(), Some("x"));
        assert!(v.get("missing").is_none());
        assert_eq!(v.fields().unwrap().len(), 1);
    }

    #[test]
    fn prune_strips_matching_keys_recursively() {
        let v = Json::parse(
            "{\"bytes\": 10, \"wall_secs\": 1.5, \
             \"rows\": [{\"n\": 1, \"stage_ns\": 7}]}",
        )
        .unwrap();
        let pruned = v.prune(&|k| k.ends_with("_secs") || k.ends_with("_ns"));
        assert_eq!(pruned.render(), "{\"bytes\": 10, \"rows\": [{\"n\": 1}]}");
    }
}
