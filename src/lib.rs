//! Facade crate for the Gluon reproduction workspace.
//!
//! Re-exports every subsystem under one roof so that examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! * [`graph`] — CSR graphs, generators, I/O ([`gluon_graph`]);
//! * [`net`] — the simulated cluster transport ([`gluon_net`]);
//! * [`partition`] — OEC/IEC/CVC/HVC partitioning ([`gluon_partition`]);
//! * [`substrate`] — the Gluon communication substrate itself ([`gluon`]);
//! * [`engines`] — Ligra/Galois/IrGL-style compute engines
//!   ([`gluon_engines`]);
//! * [`algos`] — the distributed benchmarks and drivers ([`gluon_algos`]);
//! * [`gemini`] — the Gemini baseline system ([`gluon_gemini`]);
//! * [`trace`] — structured span tracing and per-phase metrics
//!   ([`gluon_trace`]);
//! * [`metrics`] — typed counter/gauge/histogram registries, round
//!   time-series, and the Prometheus/JSON exporters ([`gluon_metrics`]).
//!
//! # Examples
//!
//! ```
//! use gluon_suite::algos::{driver, Algorithm, DistConfig};
//! use gluon_suite::graph::gen;
//!
//! let g = gen::rmat(6, 4, Default::default(), 3);
//! let out = driver::Run::new(&g, Algorithm::Bfs).config(&DistConfig::new(2)).launch();
//! assert_eq!(out.int_labels.len(), g.num_nodes() as usize);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The Gluon communication substrate (re-export of the `gluon` crate).
pub use gluon as substrate;
pub use gluon_algos as algos;
pub use gluon_engines as engines;
pub use gluon_gemini as gemini;
pub use gluon_graph as graph;
pub use gluon_metrics as metrics;
pub use gluon_net as net;
pub use gluon_partition as partition;
pub use gluon_trace as trace;
