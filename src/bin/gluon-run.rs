//! `gluon-run`: run any benchmark configuration from the command line.
//!
//! ```text
//! gluon-run [--algo bfs|cc|pr|sssp|kcore] [--engine d-ligra|d-galois|d-irgl]
//!           [--policy oec|iec|cvc|hvc|random-oec|fennel] [--opts unopt|osi|oti|osti]
//!           [--hosts N] [--input PATH | --gen rmat:SCALE:EF | --gen web:N:DEG]
//!           [--seed S] [--k K] [--verify]
//! ```
//!
//! `--input` reads a text edge list (`src dst [weight]`, header
//! `num_nodes num_edges`); `--gen` generates an input. With `--verify` the
//! result is checked against the single-host oracle.

use gluon_suite::algos::{driver, reference, Algorithm, DistConfig, EngineKind};
use gluon_suite::graph::{self as graph, gen, max_out_degree_node, Csr};
use gluon_suite::net::CostModel;
use gluon_suite::partition::Policy;
use gluon_suite::substrate::OptLevel;
use std::process::ExitCode;

struct Options {
    algo: String,
    engine: EngineKind,
    policy: Policy,
    opts: OptLevel,
    hosts: usize,
    input: Option<String>,
    generator: String,
    seed: u64,
    k: u32,
    verify: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: gluon-run [--algo bfs|cc|pr|sssp|kcore] [--engine d-ligra|d-galois|d-irgl]\n\
         \x20                [--policy oec|iec|cvc|hvc|random-oec|fennel] [--opts unopt|osi|oti|osti]\n\
         \x20                [--hosts N] [--input PATH | --gen rmat:SCALE:EF | --gen web:N:DEG]\n\
         \x20                [--seed S] [--k K] [--verify]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        algo: "bfs".into(),
        engine: EngineKind::Galois,
        policy: Policy::Cvc,
        opts: OptLevel::OSTI,
        hosts: 4,
        input: None,
        generator: "rmat:12:16".into(),
        seed: 42,
        k: 3,
        verify: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--algo" => opts.algo = value("--algo"),
            "--engine" => {
                opts.engine = match value("--engine").as_str() {
                    "d-ligra" | "ligra" => EngineKind::Ligra,
                    "d-galois" | "galois" => EngineKind::Galois,
                    "d-irgl" | "irgl" => EngineKind::Irgl,
                    other => {
                        eprintln!("unknown engine {other:?}");
                        usage()
                    }
                }
            }
            "--policy" => {
                opts.policy = value("--policy").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--opts" => {
                opts.opts = value("--opts").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--hosts" => {
                opts.hosts = value("--hosts").parse().unwrap_or_else(|_| {
                    eprintln!("--hosts expects a positive integer");
                    usage()
                })
            }
            "--input" => opts.input = Some(value("--input")),
            "--gen" => opts.generator = value("--gen"),
            "--seed" => {
                opts.seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed expects an integer");
                    usage()
                })
            }
            "--k" => {
                opts.k = value("--k").parse().unwrap_or_else(|_| {
                    eprintln!("--k expects an integer");
                    usage()
                })
            }
            "--verify" => opts.verify = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    opts
}

fn load_graph(o: &Options) -> Csr {
    if let Some(path) = &o.input {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        });
        return graph::io::read_edge_list(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        });
    }
    let parts: Vec<&str> = o.generator.split(':').collect();
    match parts.as_slice() {
        ["rmat", scale, ef] => {
            let scale = scale.parse().unwrap_or(12);
            let ef = ef.parse().unwrap_or(16);
            gen::rmat(scale, ef, Default::default(), o.seed)
        }
        ["kron", scale, ef] => gen::kronecker(
            scale.parse().unwrap_or(12),
            ef.parse().unwrap_or(16),
            o.seed,
        ),
        ["web", n, deg] => gen::web_like(
            n.parse().unwrap_or(10_000),
            deg.parse().unwrap_or(16),
            2.0,
            o.seed,
        ),
        ["twitter", n, deg] => gen::twitter_like(
            n.parse().unwrap_or(10_000),
            deg.parse().unwrap_or(20),
            o.seed,
        ),
        other => {
            eprintln!("unknown generator spec {other:?} (want rmat:S:EF, kron:S:EF, web:N:DEG, twitter:N:DEG)");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let o = parse_args();
    let mut graph = load_graph(&o);
    let cfg = DistConfig {
        hosts: o.hosts,
        policy: o.policy,
        opts: o.opts,
        engine: o.engine,
    };
    let algo = match o.algo.as_str() {
        "bfs" => Some(Algorithm::Bfs),
        "cc" => Some(Algorithm::Cc),
        "pr" | "pagerank" => Some(Algorithm::Pagerank),
        "sssp" => Some(Algorithm::Sssp),
        "kcore" => None,
        other => {
            eprintln!("unknown algorithm {other:?}");
            usage()
        }
    };
    if algo == Some(Algorithm::Sssp) && !graph.is_weighted() {
        graph = gen::with_random_weights(&graph, 100, o.seed ^ 0xABCD);
    }
    println!(
        "running {} with {} on {} hosts ({} partitioning, {} optimizations)",
        o.algo, o.engine, o.hosts, o.policy, o.opts
    );
    println!(
        "input: |V|={} |E|={}{}",
        graph.num_nodes(),
        graph.num_edges(),
        if graph.is_weighted() {
            " (weighted)"
        } else {
            ""
        }
    );
    let out = match algo {
        Some(a) => driver::Run::new(&graph, a).config(&cfg).launch(),
        None => driver::Run::kcore(&graph, o.k).config(&cfg).launch(),
    };
    println!("rounds: {}", out.rounds);
    println!(
        "partitioning: {:.3}s   compute (max/host): {:.3}s",
        out.partition_secs, out.run.max_compute_secs
    );
    println!(
        "communication: {} bytes, {} messages   replication: {:.2}",
        out.run.total_bytes, out.run.total_messages, out.partition.replication_factor
    );
    println!(
        "projected time on Omni-Path: {:.4}s",
        out.projected_secs(&CostModel::OMNI_PATH)
    );
    if o.verify {
        let source = max_out_degree_node(&graph);
        let ok = match algo {
            Some(Algorithm::Bfs) => out.int_labels == reference::bfs(&graph, source),
            Some(Algorithm::Sssp) => out.int_labels == reference::sssp(&graph, source),
            Some(Algorithm::Cc) => out.int_labels == reference::cc(&graph),
            Some(Algorithm::Pagerank) => {
                let (oracle, _) = reference::pagerank(&graph, 0.85, 1e-6, 100);
                out.ranks
                    .iter()
                    .zip(&oracle)
                    .all(|(a, b)| (a - b).abs() < 1e-6)
            }
            None => {
                let core = reference::kcore(&graph);
                out.int_labels
                    .iter()
                    .zip(&core)
                    .all(|(&alive, &c)| alive == u32::from(c >= o.k))
            }
        };
        println!("verification: {}", if ok { "PASS" } else { "FAIL" });
        if !ok {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
