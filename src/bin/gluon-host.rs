//! One host of a multi-process Gluon cluster. Spawned (one process per
//! rank) by `gluon_algos::launcher::spawn_local_cluster`; see that module
//! for the argument protocol. `gluon-host smoke` runs a self-contained
//! 2-process parity check against the in-memory backend.

fn main() {
    std::process::exit(gluon_algos::launcher::gluon_host_main());
}
