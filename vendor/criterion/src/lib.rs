//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the harness subset the workspace's benches use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros. Instead of the real
//! crate's statistical sampling it runs each benchmark body a fixed small
//! number of iterations and prints the mean wall time — enough to execute
//! every bench end-to-end and report an order-of-magnitude figure.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Iterations per benchmark body (kept small: this harness measures
/// roughly, it does not sample statistically).
const ITERATIONS: u32 = 20;

/// Benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_nanos: 0.0 };
        f(&mut b);
        report(name, b.mean_nanos);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { mean_nanos: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), b.mean_nanos);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    mean_nanos: f64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            std::hint::black_box(f());
        }
        self.mean_nanos = start.elapsed().as_nanos() as f64 / f64::from(ITERATIONS);
    }
}

fn report(label: &str, mean_nanos: f64) {
    if mean_nanos >= 1_000_000.0 {
        println!("bench {label:<50} {:>10.3} ms", mean_nanos / 1_000_000.0);
    } else if mean_nanos >= 1_000.0 {
        println!("bench {label:<50} {:>10.3} us", mean_nanos / 1_000.0);
    } else {
        println!("bench {label:<50} {mean_nanos:>10.1} ns");
    }
}

/// Bundles benchmark functions into a group runner, mirroring the real
/// crate's macro shape.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_benches_run() {
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("smoke-group");
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u32, |b, &x| b.iter(|| x * x));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| {
            b.iter(|| x + x)
        });
        g.finish();
    }
}
