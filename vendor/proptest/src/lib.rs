//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, integer-range and
//! tuple strategies, `collection::{vec, btree_set}`, [`any`], the
//! [`ProptestConfig`] case count, and the `proptest!`/`prop_assert*!`
//! macros.
//!
//! Differences from the real crate, acceptable for an offline test
//! harness: no shrinking (a failing case panics with the generated
//! values unreduced), no persistence of failing seeds, and a fixed
//! deterministic seed per case index so failures reproduce across runs.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose sequence depends only on `case`.
    pub fn deterministic(case: u64) -> TestRng {
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Runner configuration (subset: case count only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Integer types usable in range strategies.
pub trait UniformInt: Copy {
    /// Widens to `u64`.
    fn to_u64(self) -> u64;
    /// Narrows from `u64` (caller guarantees range).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl<T: UniformInt> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: UniformInt> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "empty range strategy");
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.below(span))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical full-domain strategy (subset of `Arbitrary`).
pub trait ArbitraryValue {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// See [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            assert!(span > 0, "empty size range");
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` of `element` values with at most `size.end - 1`
    /// entries (duplicates collapse, as in the real crate).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = self.size.end - self.size.start;
            assert!(span > 0, "empty size range");
            let target = self.size.start + rng.below(span as u64) as usize;
            let mut set = BTreeSet::new();
            for _ in 0..target {
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::TestRng::deterministic(case as u64);
                    $(
                        let $arg =
                            $crate::Strategy::generate(&($strat), &mut proptest_rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `assert!` under a proptest-compatible name (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => {
        assert!($($t)*)
    };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => {
        assert_eq!($($t)*)
    };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => {
        assert_ne!($($t)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic(3);
        let s = (1u32..5, 0usize..=2);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!(b <= 2);
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = crate::TestRng::deterministic(9);
        let s = (2u32..10).prop_flat_map(|n| (0..n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert!(v < n);
        }
    }

    #[test]
    fn collections_respect_size_bounds() {
        let mut rng = crate::TestRng::deterministic(1);
        let vs = crate::collection::vec(0u32..4, 0..7);
        let ss = crate::collection::btree_set(0u32..100, 0..5);
        for _ in 0..50 {
            assert!(vs.generate(&mut rng).len() < 7);
            assert!(ss.generate(&mut rng).len() < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_runs_bodies(x in 0u32..10, y in 0u32..10) {
            prop_assert!(x < 10 && y < 10);
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
