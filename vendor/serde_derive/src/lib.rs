//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain-old-data types
//! but never actually serializes through serde (the wire format is
//! hand-rolled in `substrate::encode`). These derives therefore expand to
//! nothing: the `serde` stub's traits are blanket-implemented, so the
//! attribute only needs to be accepted, not acted on.

use proc_macro::TokenStream;

/// No-op derive for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
