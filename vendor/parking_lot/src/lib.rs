//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns the guard directly rather than a `Result`. A panic
//! while holding a lock poisons the underlying std mutex; this shim
//! recovers the data anyway, matching `parking_lot`'s behaviour of not
//! tracking poisoning at all.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (poison-free API).
#[derive(Default, Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// Reader-writer lock (poison-free API).
#[derive(Default, Debug)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
