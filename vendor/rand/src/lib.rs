//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the subset the workspace uses: `rngs::StdRng`, seeded via
//! [`SeedableRng::seed_from_u64`], with [`Rng::gen`] for `f64` in `[0, 1)`
//! and [`Rng::gen_range`] over integer ranges.
//!
//! `StdRng` here is splitmix64 rather than the real crate's ChaCha12 —
//! every consumer in this workspace only needs a deterministic,
//! well-mixed sequence, not cryptographic quality, and all tests are
//! self-consistent against this generator.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that [`Rng::gen_range`] can produce.
pub trait UniformInt: Copy {
    /// Widens to `u64` for uniform arithmetic.
    fn to_u64(self) -> u64;
    /// Narrows from `u64`; the value is guaranteed in range by the caller.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The produced value type.
    type Sample;
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Sample;
}

impl<T: UniformInt> SampleRange for Range<T> {
    type Sample = T;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample from an empty range");
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: UniformInt> SampleRange for RangeInclusive<T> {
    type Sample = T;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            // Full u64 range: every draw is already uniform.
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.next_u64() % span)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the unit/full distribution.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Random value generation interface (subset).
pub trait Rng {
    /// Produces the next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` (e.g. `f64` uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Sample
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
        }
    }
}
