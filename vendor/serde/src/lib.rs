//! Minimal offline stand-in for the `serde` crate.
//!
//! The workspace tags value types with `#[derive(Serialize, Deserialize)]`
//! for downstream tooling, but all actual wire encoding is hand-rolled in
//! `substrate::encode`. This stub keeps those derives compiling: the
//! traits are empty markers with blanket impls, and the derive macros
//! (re-exported from the `serde_derive` stub) expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
