//! Minimal offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: cheaply clonable
//! immutable [`Bytes`], an append-only [`BytesMut`] builder, and the
//! little-endian `put_*` methods of [`BufMut`]. Clones of one `Bytes`
//! share the same allocation (and therefore the same `as_ptr`), matching
//! the real crate's identity semantics that `gluon-net` relies on.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates a buffer borrowing nothing: the static slice is copied once.
    ///
    /// (The real crate keeps the `'static` reference; for the workspace's
    /// purposes only content and clone-identity matter.)
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty builder with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice (also available through [`BufMut::put_slice`]).
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Append-only writer interface (little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&b[..], b"abc");
    }

    #[test]
    fn builder_round_trip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u32_le(2);
        m.put_u64_le(3);
        let b = m.freeze();
        assert_eq!(b.len(), 13);
        assert_eq!(b[0], 1);
        assert_eq!(u32::from_le_bytes(b[1..5].try_into().unwrap()), 2);
    }
}
