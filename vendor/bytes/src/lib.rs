//! Minimal offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: cheaply clonable
//! immutable [`Bytes`], an append-only [`BytesMut`] builder, and the
//! little-endian `put_*` methods of [`BufMut`]. Clones of one `Bytes`
//! share the same allocation (and therefore the same `as_ptr`), matching
//! the real crate's identity semantics that `gluon-net` relies on.
//!
//! One deliberate deviation from the real crate: the backing store is an
//! `Arc<Vec<u8>>` rather than an `Arc<[u8]>`, which lets a holder of the
//! sole remaining handle reclaim the allocation for reuse via
//! [`Bytes::try_unique_vec`]. The Gluon sync arena leans on this to make
//! steady-state rounds allocation-free: `freeze` never copies bytes, and
//! a payload buffer whose consumers have all dropped their handles can be
//! cleared and refilled in place.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::{Arc, OnceLock};

/// The shared empty allocation behind [`Bytes::new`]: constructing an
/// empty buffer must not allocate on the hot path (empty sync payloads
/// and barrier frames are routine in steady state).
fn shared_empty() -> &'static Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new()))
}

/// Cheaply clonable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Bytes {
    /// Creates an empty buffer. Allocation-free: every empty buffer
    /// shares one process-wide allocation.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::clone(shared_empty()),
        }
    }

    /// Creates a buffer borrowing nothing: the static slice is copied once.
    ///
    /// (The real crate keeps the `'static` reference; for the workspace's
    /// purposes only content and clone-identity matter.)
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of live handles sharing this allocation.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    /// Grants mutable access to the backing storage iff this is the sole
    /// remaining handle (and not the shared empty allocation). This is
    /// the recycling hook the sync arena uses: once every consumer of a
    /// round's payload has dropped its handle, the producer clears the
    /// `Vec` in place and encodes the next round into the same
    /// allocation. Returns `None` while any other handle is alive, so
    /// shared contents can never be mutated.
    pub fn try_unique_vec(&mut self) -> Option<&mut Vec<u8>> {
        if Arc::ptr_eq(&self.data, shared_empty()) {
            return None;
        }
        Arc::get_mut(&mut self.data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty builder with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`]. The
    /// allocation is transferred, not copied.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drops the contents, keeping the capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends a slice (also available through [`BufMut::put_slice`]).
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Append-only writer interface (little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&b[..], b"abc");
    }

    #[test]
    fn builder_round_trip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u32_le(2);
        m.put_u64_le(3);
        let b = m.freeze();
        assert_eq!(b.len(), 13);
        assert_eq!(b[0], 1);
        assert_eq!(u32::from_le_bytes(b[1..5].try_into().unwrap()), 2);
    }

    #[test]
    fn empty_buffers_share_one_allocation() {
        let a = Bytes::new();
        let b = Bytes::new();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert!(a.is_empty());
    }

    #[test]
    fn unique_vec_requires_uniqueness() {
        let mut a = Bytes::copy_from_slice(b"xyz");
        let b = a.clone();
        assert!(a.try_unique_vec().is_none(), "shared handle must refuse");
        drop(b);
        let ptr_before = a.as_ptr();
        let v = a.try_unique_vec().expect("sole handle may recycle");
        v.clear();
        v.extend_from_slice(b"ab");
        assert_eq!(&a[..], b"ab");
        assert_eq!(a.as_ptr(), ptr_before, "recycling reuses the allocation");
    }

    #[test]
    fn shared_empty_is_never_recyclable() {
        let mut a = Bytes::new();
        assert!(a.try_unique_vec().is_none());
    }

    #[test]
    fn handle_count_tracks_clones() {
        let a = Bytes::copy_from_slice(b"q");
        assert_eq!(a.handle_count(), 1);
        let b = a.clone();
        assert_eq!(a.handle_count(), 2);
        drop(b);
        assert_eq!(a.handle_count(), 1);
    }
}
