//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset the workspace uses:
//!
//! * `channel` — an unbounded MPMC channel whose `Sender`/`Receiver` are
//!   both `Send + Sync`, with blocking, timed, and non-blocking receives
//!   plus disconnect detection. Built on `std::sync::{Mutex, Condvar}`.
//! * `thread` — scoped threads (`crossbeam::thread::scope`), delegating to
//!   `std::thread::scope` (stabilized in Rust 1.63, so the standard
//!   library provides the exact guarantee crossbeam pioneered: spawned
//!   threads may borrow from the enclosing stack frame and are joined
//!   before `scope` returns).

#![forbid(unsafe_code)]

/// Scoped threads: spawn threads that borrow from the caller's stack and
/// are guaranteed joined when the scope ends.
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with no message.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        unbounded_with_capacity(0)
    }

    /// As [`unbounded`], with the queue's backing ring pre-reserved for
    /// `capacity` messages. (An extension over the real crossbeam API:
    /// this stand-in's queue is one contiguous ring, so reserving up
    /// front lets a steady-state sender outrun a lagging receiver by up
    /// to `capacity` messages without ever reallocating.)
    pub fn unbounded_with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::SeqCst) == 0
        }

        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).expect("channel poisoned");
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .expect("channel poisoned");
                q = guard;
            }
        }

        /// Returns a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn timeout_elapses_on_empty_channel() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<u8>();
        drop(rx2);
        assert!(tx2.send(9).is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv(), Ok(42));
    }
}
