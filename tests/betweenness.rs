//! Distributed betweenness centrality against the Brandes oracle — the
//! workload that exercises the WriteAtSource / ReadAtDestination sync
//! patterns.

use gluon_suite::algos::{driver, reference, DistConfig, EngineKind};
use gluon_suite::graph::{gen, max_out_degree_node, Csr, Gid};
use gluon_suite::partition::Policy;
use gluon_suite::substrate::OptLevel;

fn check_bc(graph: &Csr, source: Gid, cfg: &DistConfig) {
    let out = driver::Run::betweenness(graph, source).config(cfg).launch();
    let oracle = reference::betweenness_source(graph, source);
    for (v, (got, want)) in out.ranks.iter().zip(&oracle).enumerate() {
        assert!(
            (got - want).abs() < 1e-9,
            "node {v}: {got} vs {want} {cfg:?}"
        );
    }
}

#[test]
fn bc_on_small_structured_graphs() {
    // Diamond: two shortest paths 0 -> 3; each intermediate carries half
    // the pair dependency of (0, 3).
    let diamond = Csr::from_edge_list(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
    let oracle = reference::betweenness_source(&diamond, Gid(0));
    assert!((oracle[1] - 0.5).abs() < 1e-12);
    assert!((oracle[2] - 0.5).abs() < 1e-12);
    for hosts in [1, 2, 3] {
        check_bc(&diamond, Gid(0), &DistConfig::new(hosts));
    }
    check_bc(&gen::path(20), Gid(0), &DistConfig::new(3));
    check_bc(&gen::binary_tree(5), Gid(0), &DistConfig::new(4));
}

#[test]
fn bc_matches_oracle_across_policies() {
    let g = gen::rmat(8, 8, Default::default(), 81);
    let source = max_out_degree_node(&g);
    for policy in Policy::ALL {
        check_bc(
            &g,
            source,
            &DistConfig {
                hosts: 4,
                policy,
                opts: OptLevel::OSTI,
                engine: EngineKind::Galois,
            },
        );
    }
}

#[test]
fn bc_matches_oracle_across_opt_levels() {
    let g = gen::twitter_like(1_000, 10, 82);
    let source = max_out_degree_node(&g);
    for opts in OptLevel::ALL {
        check_bc(
            &g,
            source,
            &DistConfig {
                hosts: 3,
                policy: Policy::Hvc,
                opts,
                engine: EngineKind::Galois,
            },
        );
    }
}

#[test]
fn bc_handles_unreachable_regions() {
    // Two disjoint chains; the second never contributes.
    let g = Csr::from_edge_list(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)]);
    check_bc(&g, Gid(0), &DistConfig::new(4));
    let oracle = reference::betweenness_source(&g, Gid(0));
    assert_eq!(oracle[4], 0.0);
    assert_eq!(oracle[1], 2.0); // 1 lies on the paths to 2 and to 3
}
