//! Focused tests of sync-call semantics, including regressions.

use gluon_suite::algos::{driver, reference, Algorithm, DistConfig, EngineKind};
use gluon_suite::graph::{gen, Csr, Gid};
use gluon_suite::net::{run_cluster, Communicator};
use gluon_suite::partition::{partition_on_host, Policy};
use gluon_suite::substrate::{
    DenseBitset, GluonContext, MinField, OptLevel, ReadLocation, SyncSpec, WriteLocation,
};

/// Regression: under a general vertex-cut (HVC/UVC), a mirror with both
/// incoming and outgoing local edges that *originates* an update has its
/// dirty bit cleared by the reduce; the master's broadcast of the same
/// value must re-activate it or its local out-edges never see the value.
#[test]
fn broadcast_reactivates_originating_mirror() {
    // Discovered by the full cc matrix: labels failed to propagate through
    // hub mirrors under HVC. Keep an exact small instance here.
    let g = gen::rmat(8, 8, Default::default(), 100);
    let sym = reference::symmetrize(&g);
    for engine in EngineKind::ALL {
        let cfg = DistConfig {
            hosts: 3,
            policy: Policy::Hvc,
            opts: OptLevel::OSTI,
            engine,
        };
        let out = driver::Run::new(&g, Algorithm::Cc).config(&cfg).launch();
        assert_eq!(out.int_labels, reference::cc(&sym), "{engine}");
    }
}

/// The dirty set after a sync holds exactly the proxies that are active
/// for the next round: shipped mirrors cleared, reduced masters set,
/// broadcast mirrors set.
#[test]
fn sync_leaves_active_set_semantics() {
    // Path 0 -> 1 split so that host 0 owns {0}, host 1 owns {1}; OEC puts
    // edge (0, 1) on host 0 with a mirror of 1 there.
    let g = Csr::from_edge_list(2, &[(0, 1)]);
    let results = run_cluster(2, |ep| {
        let comm = Communicator::new(ep);
        let lg = partition_on_host(&g, Policy::Oec, &comm);
        let mut ctx = GluonContext::new(&lg, &comm, OptLevel::OSTI);
        let n = lg.num_proxies();
        let mut dist = vec![u32::MAX; n as usize];
        let mut bits = DenseBitset::new(n);
        if let Some(l0) = lg.lid(Gid(0)) {
            if lg.is_master(l0) {
                dist[l0.index()] = 0;
                // Relax the local edge 0 -> 1 (mirror of 1).
                for e in lg.out_edges(l0) {
                    dist[e.dst.index()] = 1;
                    bits.set(e.dst);
                }
            }
        }
        let mut field = MinField::new(&mut dist);
        let spec = SyncSpec::full(WriteLocation::Destination, ReadLocation::Source);
        ctx.sync(&spec, &mut field, &mut bits);
        let active: Vec<u32> = bits.iter().map(|l| lg.gid(l).0).collect();
        let labels: Vec<(u32, u32)> = lg
            .proxies()
            .map(|p| (lg.gid(p).0, dist[p.index()]))
            .collect();
        (lg.host(), active, labels)
    });
    for (host, active, labels) in results {
        if labels.iter().any(|&(g, _)| g == 1) {
            let d1 = labels.iter().find(|&&(g, _)| g == 1).expect("proxy 1").1;
            if host == 1 {
                // Master of 1 received the reduction: value 1, re-activated.
                assert_eq!(d1, 1, "master got the reduced value");
                assert_eq!(active, vec![1], "reduced master is active");
            } else {
                // Mirror of 1 shipped its value and went quiet (min-reset
                // keeps the value but the bit must be cleared).
                assert!(active.is_empty(), "shipped mirror must be inactive");
            }
        }
    }
}

/// Optimization level changes bytes, never answers — exercised on a graph
/// engineered to hit all wire modes (dense, bitvec, indices, empty).
#[test]
fn wire_modes_all_agree() {
    // Star: round 1 updates every neighbor (dense); later rounds nothing.
    let star = gen::star(2_000);
    // Long path: one update per round (indices mode).
    let path = gen::path(300);
    for g in [star, path] {
        let mut reference_labels = None;
        for opts in OptLevel::ALL {
            let cfg = DistConfig {
                hosts: 4,
                policy: Policy::Oec,
                opts,
                engine: EngineKind::Galois,
            };
            let out = driver::Run::new(&g, Algorithm::Bfs)
                .config(&cfg)
                .source(Gid(0))
                .pagerank(Default::default())
                .launch();
            match &reference_labels {
                None => reference_labels = Some(out.int_labels),
                Some(r) => assert_eq!(&out.int_labels, r, "{opts}"),
            }
        }
    }
}

/// A second sssp run through the same context continues from fresh fields
/// (contexts are reusable across algorithm invocations).
#[test]
fn context_is_reusable_across_runs() {
    let g = gen::rmat(7, 6, Default::default(), 55);
    let results = run_cluster(3, |ep| {
        let comm = Communicator::new(ep);
        let lg = partition_on_host(&g, Policy::Cvc, &comm);
        let mut ctx = GluonContext::new(&lg, &comm, OptLevel::OSTI);
        let mut labels = Vec::new();
        for source in [Gid(0), Gid(5)] {
            let n = lg.num_proxies();
            let mut dist = vec![u32::MAX; n as usize];
            let mut bits = DenseBitset::new(n);
            if let Some(s) = lg.lid(source) {
                dist[s.index()] = 0;
                bits.set(s);
            }
            loop {
                let mut changed = DenseBitset::new(n);
                for v in bits.iter() {
                    for e in lg.out_edges(v) {
                        let nd = dist[v.index()].saturating_add(1);
                        if nd < dist[e.dst.index()] {
                            dist[e.dst.index()] = nd;
                            changed.set(e.dst);
                        }
                    }
                }
                bits = changed;
                let mut field = MinField::new(&mut dist);
                let spec = SyncSpec::full(WriteLocation::Destination, ReadLocation::Source);
                ctx.sync(&spec, &mut field, &mut bits);
                if !ctx.any_globally(!bits.is_empty()) {
                    break;
                }
            }
            labels.push(
                lg.masters()
                    .map(|m| (lg.gid(m).0, dist[m.index()]))
                    .collect::<Vec<_>>(),
            );
        }
        labels
    });
    for (i, source) in [Gid(0), Gid(5)].into_iter().enumerate() {
        let oracle = reference::bfs(&g, source);
        let mut got = vec![u32::MAX; g.num_nodes() as usize];
        for host in &results {
            for &(gid, d) in &host[i] {
                got[gid as usize] = d;
            }
        }
        assert_eq!(got, oracle, "run {i}");
    }
}

/// Delta-stepping sssp agrees with the Dijkstra oracle across policies.
#[test]
fn delta_stepping_sssp_matches_oracle() {
    use gluon_suite::algos::apps::sssp_delta;

    let g = gen::with_random_weights(&gen::rmat(7, 6, Default::default(), 66), 20, 6);
    let source = gluon_suite::graph::max_out_degree_node(&g);
    let oracle = reference::sssp(&g, source);
    for policy in [Policy::Oec, Policy::Cvc, Policy::Hvc] {
        for delta in [1, 8, 64] {
            let per_host = run_cluster(3, |ep| {
                let comm = Communicator::new(ep);
                let lg = partition_on_host(&g, policy, &comm);
                let mut ctx = GluonContext::new(&lg, &comm, OptLevel::OSTI);
                let (dist, _) = sssp_delta(&lg, &mut ctx, source, delta);
                lg.masters()
                    .map(|m| (lg.gid(m).0, dist[m.index()]))
                    .collect::<Vec<_>>()
            });
            let mut got = vec![u32::MAX; g.num_nodes() as usize];
            for host in per_host {
                for (gid, d) in host {
                    got[gid as usize] = d;
                }
            }
            assert_eq!(got, oracle, "{policy} delta {delta}");
        }
    }
}
