//! `RunReport` schema and identity guarantees.
//!
//! Three contracts of the observability layer:
//!
//! 1. **Schema stability** — the exported JSON document parses back
//!    through the workspace's own parser, renders bit-identically, and
//!    keeps the same top-level key set (and schema version) no matter how
//!    many worker threads the run used.
//! 2. **Determinism fingerprint** — with every timing field stripped (the
//!    [`fingerprint`]), the report is bit-identical across thread counts:
//!    payload bytes, message counts, wire-mode histograms, and round
//!    counts are scheduling-invariant in the simulated cluster.
//! 3. **Crash transparency** — a supervised run that crashes and recovers
//!    produces the same non-timing report as the crash-free run: recovery
//!    replays the computation, and the final attempt's metrics (the hub
//!    re-baselines per attempt) match a run that never failed.
//!
//! [`fingerprint`]: gluon_suite::algos::RunReport::fingerprint

use gluon_suite::algos::{
    Algorithm, DistConfig, EngineKind, Run, RunReport, REPORT_SCHEMA_VERSION,
};
use gluon_suite::graph::{gen, Csr};
use gluon_suite::metrics::json::Json;
use gluon_suite::metrics::MetricsHub;
use gluon_suite::net::{
    CostModel, CrashRule, DetectorConfig, FaultCounters, FaultPlan, FaultyTransport,
    ReliableConfig, RetryPolicy,
};
use gluon_suite::partition::Policy;
use gluon_suite::substrate::OptLevel;
use gluon_suite::trace::Tracer;
use std::time::Duration;

const HOSTS: usize = 3;

fn graph() -> Csr {
    gen::rmat(8, 8, Default::default(), 21)
}

fn cfg() -> DistConfig {
    DistConfig {
        hosts: HOSTS,
        policy: Policy::Cvc,
        opts: OptLevel::OSTI,
        engine: EngineKind::Ligra,
    }
}

fn detecting() -> ReliableConfig {
    ReliableConfig {
        retry: RetryPolicy::default(),
        detector: Some(DetectorConfig::default().with_max_silence(Duration::from_millis(200))),
    }
}

fn report_at(threads: usize) -> RunReport {
    let g = graph();
    let hub = MetricsHub::new(HOSTS);
    let out = Run::new(&g, Algorithm::Bfs)
        .config(&cfg())
        .threads(threads)
        .metrics(&hub)
        .launch();
    out.report(&hub, &CostModel::REPRO)
}

fn top_level_keys(json: &Json) -> Vec<String> {
    json.fields()
        .expect("report root must be an object")
        .iter()
        .map(|(k, _)| k.clone())
        .collect()
}

#[test]
fn report_json_round_trips_and_keeps_its_schema_across_thread_counts() {
    let one = report_at(1);
    let four = report_at(4);

    for report in [&one, &four] {
        // Text-level round trip: parse with the workspace parser, render
        // again, get the same bytes. (Tree equality would be too strict:
        // `0.0` renders as `0`, which re-parses as an unsigned integer.)
        let text = report.render_json();
        let reparsed = Json::parse(&text).expect("report must be valid JSON");
        assert_eq!(
            reparsed.render(),
            text,
            "render/parse/render must be stable"
        );
        assert_eq!(
            report.json().get("schema_version").and_then(Json::as_u64),
            Some(REPORT_SCHEMA_VERSION)
        );
        assert_eq!(
            report.json().get("metrics_enabled").and_then(Json::as_bool),
            Some(true)
        );
    }

    // The document shape is thread-count invariant...
    assert_eq!(top_level_keys(one.json()), top_level_keys(four.json()));
    // ...and so is everything except timing.
    assert_eq!(
        one.fingerprint(),
        four.fingerprint(),
        "non-timing report fields must not depend on the thread count"
    );
}

#[test]
fn recovered_report_matches_crash_free_on_non_timing_fields() {
    let g = graph();

    // No checkpointing on purpose: recovery then replays the whole
    // computation from scratch, so the final (surviving) attempt moves
    // exactly the bytes of a crash-free run. With a mid-run checkpoint
    // the final attempt would legitimately replay fewer rounds — the
    // hub's per-attempt baseline would describe only the resumed suffix.
    let run = |plan: Option<FaultPlan>| -> (RunReport, u32) {
        let hub = MetricsHub::new(HOSTS);
        let base = Run::new(&g, Algorithm::Bfs)
            .config(&cfg())
            .metrics(&hub)
            .reliable(detecting());
        let out = match plan {
            Some(plan) => {
                let counters = FaultCounters::new();
                base.transport_per_attempt(move |ep, attempt| {
                    FaultyTransport::new(ep, plan.for_attempt(attempt), counters.clone())
                })
                .try_launch()
            }
            None => base.try_launch(),
        }
        .expect("supervised run must succeed");
        (out.report(&hub, &CostModel::REPRO), out.recoveries)
    };

    let (clean, clean_recoveries) = run(None);
    assert_eq!(clean_recoveries, 0);

    let plan = FaultPlan::none(7).with_crash(CrashRule::at(1, 3));
    let (recovered, recoveries) = run(Some(plan));
    assert!(recoveries >= 1, "the injected crash never fired");

    // Bytes, messages, wire-mode histograms, rounds, per-round series —
    // everything except timing and the supervision/reliability counters —
    // must be identical: the hub re-baselines at each attempt, so the
    // surviving report describes exactly one crash-free replay.
    assert_eq!(
        clean.fingerprint(),
        recovered.fingerprint(),
        "a recovered run must report the same non-timing fields as a crash-free run"
    );
    // The supervision counters themselves do tell the two apart.
    assert_eq!(
        clean.json().get("recoveries").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(
        recovered.json().get("recoveries").and_then(Json::as_u64),
        Some(u64::from(recoveries))
    );
}

#[test]
fn trace_ring_drops_surface_in_the_report() {
    let g = graph();
    let hub = MetricsHub::new(HOSTS);
    // A 16-slot ring cannot hold a BFS run's spans: the ring wraps and
    // the drop counters must say so, both in the summary text and in the
    // report document.
    let tracer = Tracer::with_capacity(HOSTS, 16);
    let out = Run::new(&g, Algorithm::Bfs)
        .config(&cfg())
        .tracer(&tracer)
        .metrics(&hub)
        .launch();
    assert!(
        tracer.dropped_spans() > 0,
        "ring never wrapped — enlarge the run"
    );

    let report = out.report_with_tracer(&hub, &CostModel::REPRO, &tracer);
    let trace = report
        .json()
        .get("trace")
        .expect("report must carry a trace section");
    assert_eq!(trace.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(
        trace.get("dropped_spans").and_then(Json::as_u64),
        Some(tracer.dropped_spans())
    );
    assert_eq!(
        trace.get("dropped_events").and_then(Json::as_u64),
        Some(tracer.dropped_events())
    );

    let summary = tracer.summary("drops");
    assert!(
        summary.contains("TRUNCATED") && summary.contains(&tracer.dropped_spans().to_string()),
        "summary must surface the drop counters prominently:\n{summary}"
    );
}

#[test]
fn prometheus_exposition_carries_the_run_counters() {
    let report = report_at(2);
    let prom = report.prometheus();
    for metric in [
        "gluon_sync_rounds",
        "gluon_bytes_sent",
        "gluon_messages_sent",
        "gluon_wire_msgs_dense",
    ] {
        assert!(prom.contains(metric), "missing {metric} in:\n{prom}");
    }
}
