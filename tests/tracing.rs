//! Integration tests for `gluon-trace`: span-sum exactness, Chrome trace
//! schema, zero-cost-when-disabled identity, and chaos retransmit tagging.

use gluon_suite::algos::{driver, Algorithm, DistConfig, DistOutcome};
use gluon_suite::graph::{gen, max_out_degree_node};
use gluon_suite::net::{FaultCounters, FaultPlan, FaultyTransport, ReliableTransport};
use gluon_suite::trace::{ChromeTraceBuilder, Stage, Tracer, SETUP_PHASE};
use std::collections::HashMap;

/// For every (host, phase) of `out`, the durations of the child spans the
/// tracer recorded must sum to that phase's `comm_secs` (float tolerance:
/// the ns->secs conversion accumulates rounding).
fn assert_span_sums(tracer: &Tracer, out: &DistOutcome, what: &str) {
    let mut sums: HashMap<(usize, u32), f64> = HashMap::new();
    for s in tracer.spans() {
        if s.stage.is_child() && s.phase != SETUP_PHASE {
            *sums.entry((s.host, s.phase)).or_default() += s.dur_ns as f64 / 1e9;
        }
    }
    let mut checked = 0;
    for (host, stats) in out.host_stats.iter().enumerate() {
        for (phase, p) in stats.phases.iter().enumerate() {
            let sum = sums.get(&(host, phase as u32)).copied().unwrap_or(0.0);
            assert!(
                (sum - p.comm_secs).abs() <= 1e-9 + 1e-6 * p.comm_secs,
                "{what}: host {host} phase {phase}: children {sum} != comm {}",
                p.comm_secs
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "{what}: no phases to check");
    assert!(
        tracer.spans().iter().any(|s| s.stage == Stage::Sync),
        "{what}: no Sync parent spans"
    );
}

#[test]
fn span_sums_match_comm_secs_for_every_algorithm() {
    let g = gen::rmat(7, 6, Default::default(), 3);
    let cfg = DistConfig::new(4);
    for algo in Algorithm::ALL {
        let tracer = Tracer::new(cfg.hosts);
        let out = driver::Run::new(&g, algo)
            .config(&cfg)
            .tracer(&tracer)
            .launch();
        assert!(out.rounds > 0);
        assert_span_sums(&tracer, &out, algo.name());
    }
    // The auxiliary kernels run through the same instrumented sync path.
    let tracer = Tracer::new(cfg.hosts);
    let out = driver::Run::kcore(&g, 2)
        .config(&cfg)
        .tracer(&tracer)
        .transport(|ep| ep)
        .launch();
    assert_span_sums(&tracer, &out, "kcore");
    let tracer = Tracer::new(cfg.hosts);
    let out = driver::Run::betweenness(&g, max_out_degree_node(&g))
        .config(&cfg)
        .tracer(&tracer)
        .transport(|ep| ep)
        .launch();
    assert_span_sums(&tracer, &out, "betweenness");
}

#[test]
fn setup_and_collective_spans_are_recorded() {
    let g = gen::rmat(7, 6, Default::default(), 3);
    let cfg = DistConfig::new(4);
    let tracer = Tracer::new(cfg.hosts);
    driver::Run::new(&g, Algorithm::Bfs)
        .config(&cfg)
        .tracer(&tracer)
        .launch();
    let spans = tracer.spans();
    for host in 0..cfg.hosts {
        assert!(
            spans
                .iter()
                .any(|s| s.host == host && s.phase == SETUP_PHASE && s.stage == Stage::Memo),
            "host {host}: memoization handshake span missing"
        );
        // BFS terminates via any_globally, which is a traced collective.
        assert!(
            spans
                .iter()
                .any(|s| s.host == host && s.stage == Stage::Collective),
            "host {host}: collective span missing"
        );
    }
    assert!(tracer.barrier_wait_secs() >= 0.0);
}

#[test]
fn disabled_tracer_leaves_counters_bit_identical() {
    let g = gen::rmat(8, 8, Default::default(), 11);
    let cfg = DistConfig::new(3);
    let plain = driver::Run::new(&g, Algorithm::Sssp).config(&cfg).launch();
    let disabled = Tracer::disabled();
    let traced = driver::Run::new(&g, Algorithm::Sssp)
        .config(&cfg)
        .tracer(&disabled)
        .launch();
    assert_eq!(plain.run.total_bytes, traced.run.total_bytes);
    assert_eq!(plain.run.total_messages, traced.run.total_messages);
    assert_eq!(plain.run.max_host_bytes, traced.run.max_host_bytes);
    assert_eq!(plain.rounds, traced.rounds);
    assert_eq!(plain.int_labels, traced.int_labels);
    // Per-phase byte/message counters are exactly reproducible too.
    for (a, b) in plain.host_stats.iter().zip(&traced.host_stats) {
        assert_eq!(a.phases.len(), b.phases.len());
        for (pa, pb) in a.phases.iter().zip(&b.phases) {
            assert_eq!(pa.bytes_sent, pb.bytes_sent);
            assert_eq!(pa.messages_sent, pb.messages_sent);
        }
    }
    // And the disabled tracer recorded nothing.
    assert!(disabled.spans().is_empty());
    assert!(disabled.events().is_empty());
    assert!(disabled.wire_mode_histogram().is_empty());
}

#[test]
fn chaos_runs_tag_retransmissions_in_the_trace() {
    let g = gen::rmat(8, 8, Default::default(), 21);
    let cfg = DistConfig::new(4);
    let clean = driver::Run::new(&g, Algorithm::Bfs).config(&cfg).launch();
    let tracer = Tracer::new(cfg.hosts);
    let counters = FaultCounters::new();
    let out = driver::Run::new(&g, Algorithm::Bfs)
        .config(&cfg)
        .source(max_out_degree_node(&g))
        .pagerank(Default::default())
        .tracer(&tracer)
        .transport(|ep| {
            ReliableTransport::over(FaultyTransport::new(
                ep,
                FaultPlan::lossy(7),
                counters.clone(),
            ))
            .with_tracer(tracer.clone())
        })
        .launch();
    assert_eq!(out.int_labels, clean.int_labels, "chaos changed results");
    assert!(counters.total() > 0, "fault plan injected nothing");
    assert!(
        tracer.retransmit_events() > 0,
        "no retransmissions tagged in the trace"
    );
    let events = tracer.events();
    let retx: Vec<_> = events.iter().filter(|e| e.name == "retransmit").collect();
    assert_eq!(retx.len() as u64, tracer.retransmit_events());
    for e in &retx {
        assert!(e.host < cfg.hosts && e.peer < cfg.hosts);
        assert!(e.bytes > 0, "retransmitted frames carry wire bytes");
    }
    // The trace agrees with the NetStats reliability counters.
    assert_eq!(tracer.retransmit_events(), out.net.retransmit_messages);
    assert_eq!(tracer.dup_events(), out.net.dup_suppressed);
}

// ---------------------------------------------------------------------------
// Chrome trace-event schema validation, via a minimal JSON parser (the
// workspace deliberately has no serde_json).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value();
        p.ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
        v
    }

    fn ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) {
        self.ws();
        assert_eq!(
            self.bytes.get(self.pos),
            Some(&c),
            "expected {:?} at byte {}",
            c as char,
            self.pos
        );
        self.pos += 1;
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        self.bytes[self.pos]
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Json {
        assert!(
            self.bytes[self.pos..].starts_with(text.as_bytes()),
            "bad literal at byte {}",
            self.pos
        );
        self.pos += text.len();
        v
    }

    fn number(&mut self) -> Json {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8");
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number {text}")))
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes[self.pos] {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .expect("utf8");
                            let code = u32::from_str_radix(hex, 16).expect("hex escape");
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => panic!("unsupported escape \\{}", other as char),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 continuation bytes pass through.
                    let start = self.pos;
                    while self.bytes[self.pos] != b'"' && self.bytes[self.pos] != b'\\' {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
                }
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                other => panic!("expected , or ] got {:?}", other as char),
            }
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut fields = Vec::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Obj(fields);
        }
        loop {
            self.ws();
            let key = self.string();
            self.eat(b':');
            fields.push((key, self.value()));
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(fields);
                }
                other => panic!("expected , or }} got {:?}", other as char),
            }
        }
    }
}

#[test]
fn exported_chrome_trace_validates_against_the_schema() {
    let g = gen::rmat(7, 6, Default::default(), 3);
    let cfg = DistConfig::new(3);
    let tracer = Tracer::new(cfg.hosts);
    let counters = FaultCounters::new();
    driver::Run::new(&g, Algorithm::Bfs)
        .config(&cfg)
        .source(max_out_degree_node(&g))
        .pagerank(Default::default())
        .tracer(&tracer)
        .transport(|ep| {
            ReliableTransport::over(FaultyTransport::new(
                ep,
                FaultPlan::lossy(3),
                counters.clone(),
            ))
            .with_tracer(tracer.clone())
        })
        .launch();
    let mut chrome = ChromeTraceBuilder::new();
    chrome.add("bfs \"chaos\" run", &tracer); // exercise name escaping
    let doc = Parser::parse(&chrome.finish());

    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::str),
        Some("ms"),
        "displayTimeUnit"
    );
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());

    let mut complete = 0u64;
    let mut instants = 0u64;
    let mut process_names = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::str).expect("every event: ph");
        ev.get("pid").and_then(Json::num).expect("every event: pid");
        let name = ev
            .get("name")
            .and_then(Json::str)
            .expect("every event: name");
        match ph {
            "X" => {
                complete += 1;
                ev.get("tid").and_then(Json::num).expect("X: tid");
                let ts = ev.get("ts").and_then(Json::num).expect("X: ts");
                let dur = ev.get("dur").and_then(Json::num).expect("X: dur");
                assert!(ts >= 0.0 && dur >= 0.0, "non-negative microseconds");
                assert!(
                    Stage::ALL.iter().any(|s| s.name() == name),
                    "unknown span name {name}"
                );
                ev.get("args")
                    .and_then(|a| a.get("phase"))
                    .and_then(Json::num)
                    .expect("X: args.phase");
            }
            "i" => {
                instants += 1;
                assert_eq!(ev.get("s").and_then(Json::str), Some("t"), "i: scope");
                let args = ev.get("args").expect("i: args");
                args.get("peer").and_then(Json::num).expect("i: args.peer");
                args.get("bytes")
                    .and_then(Json::num)
                    .expect("i: args.bytes");
            }
            "M" => {
                if name == "process_name" {
                    process_names += 1;
                    let label = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::str)
                        .expect("M: args.name");
                    assert_eq!(label, "bfs \"chaos\" run", "escaped label survives");
                } else {
                    assert_eq!(name, "thread_name");
                }
            }
            other => panic!("unknown event type {other}"),
        }
    }
    assert_eq!(complete, tracer.spans().len() as u64);
    assert_eq!(instants, tracer.events().len() as u64);
    assert_eq!(process_names, 1, "one process per add() call");
    assert!(instants > 0, "chaos run must contribute instant events");
}
