//! Mixed-engine clusters (paper Figure 1): hosts running different compute
//! engines against one Gluon substrate must agree with the oracle.

use gluon_suite::algos::{driver, reference, EngineKind};
use gluon_suite::graph::{gen, max_out_degree_node};
use gluon_suite::partition::Policy;
use gluon_suite::substrate::OptLevel;

#[test]
fn every_engine_mix_matches_the_oracle() {
    let g = gen::rmat(7, 8, Default::default(), 90);
    let source = max_out_degree_node(&g);
    let oracle = reference::bfs(&g, source);
    let mixes: [&[EngineKind]; 4] = [
        &[EngineKind::Galois, EngineKind::Irgl],
        &[EngineKind::Ligra, EngineKind::Galois, EngineKind::Irgl],
        &[EngineKind::Irgl, EngineKind::Irgl, EngineKind::Ligra],
        &[
            EngineKind::Galois,
            EngineKind::Ligra,
            EngineKind::Irgl,
            EngineKind::Galois,
        ],
    ];
    for engines in mixes {
        for policy in [Policy::Oec, Policy::Cvc, Policy::Hvc] {
            let out = driver::run_heterogeneous_bfs(&g, policy, OptLevel::OSTI, engines, source);
            assert_eq!(out.int_labels, oracle, "{engines:?} {policy}");
        }
    }
}

#[test]
fn mixed_engines_align_sync_phases() {
    let g = gen::twitter_like(1_000, 10, 91);
    let source = max_out_degree_node(&g);
    let out = driver::run_heterogeneous_bfs(
        &g,
        Policy::Cvc,
        OptLevel::OSTI,
        &[EngineKind::Galois, EngineKind::Irgl, EngineKind::Ligra],
        source,
    );
    let phases: Vec<usize> = out.host_stats.iter().map(|h| h.num_phases()).collect();
    assert!(phases.windows(2).all(|w| w[0] == w[1]), "{phases:?}");
}

#[test]
fn heterogeneity_works_at_every_opt_level() {
    let g = gen::rmat(6, 6, Default::default(), 92);
    let source = max_out_degree_node(&g);
    let oracle = reference::bfs(&g, source);
    for opts in OptLevel::ALL {
        let out = driver::run_heterogeneous_bfs(
            &g,
            Policy::Hvc,
            opts,
            &[EngineKind::Irgl, EngineKind::Galois],
            source,
        );
        assert_eq!(out.int_labels, oracle, "{opts}");
    }
}
