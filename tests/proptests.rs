//! Property-based tests over the core invariants of the system.

use gluon_suite::algos::{driver, reference, Algorithm, DistConfig, EngineKind};
use gluon_suite::graph::{Csr, Gid};
use gluon_suite::partition::{check_local_graph, check_partitions, partition_all, Policy};
use gluon_suite::substrate::encode::{
    candidate_sizes, decode_gid_values, decode_memoized, encode_gid_values, encode_memoized,
    WireMode,
};
use gluon_suite::substrate::OptLevel;
use proptest::prelude::*;

/// Arbitrary small directed graphs as (node count, edge list).
fn arb_graph() -> impl Strategy<Value = Csr> {
    (2u32..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 1u32..20), 0..200);
        edges.prop_map(move |es| Csr::from_weighted_edge_list(n, &es))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partitions_preserve_every_invariant(graph in arb_graph(), hosts in 1usize..6) {
        for policy in Policy::ALL {
            let parts = partition_all(&graph, hosts, policy);
            for p in &parts {
                check_local_graph(p).expect("local invariants");
            }
            check_partitions(&parts).expect("global invariants");
        }
    }

    #[test]
    fn transpose_is_an_involution(graph in arb_graph()) {
        let tt = graph.transpose().transpose();
        let mut a: Vec<_> = graph.edges().map(|(s, e)| (s.0, e.dst.0, e.weight)).collect();
        let mut b: Vec<_> = tt.edges().map(|(s, e)| (s.0, e.dst.0, e.weight)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn memoized_encoding_round_trips(
        list_len in 1usize..500,
        seed_positions in proptest::collection::btree_set(0u32..500, 0..120),
    ) {
        let updated: Vec<u32> = seed_positions
            .into_iter()
            .filter(|&p| (p as usize) < list_len)
            .collect();
        let value_at = |p: usize| (p as u64) * 3 + 1;
        let msg = encode_memoized(list_len, &updated, value_at);
        let mut got = Vec::new();
        decode_memoized::<u64>(&msg, list_len, &mut |pos, v| got.push((pos, v)))
            .expect("own encoding decodes");
        // Every updated position must come back with its value; dense mode
        // may add extra (but correct) positions.
        prop_assert!(got.iter().all(|&(p, v)| v == value_at(p)));
        let got_pos: std::collections::BTreeSet<usize> = got.iter().map(|&(p, _)| p).collect();
        for &u in &updated {
            prop_assert!(got_pos.contains(&(u as usize)), "missing {u}");
        }
        if WireMode::of(&msg) != WireMode::Dense {
            prop_assert_eq!(got.len(), updated.len());
        }
    }

    #[test]
    fn memoized_encoding_never_beats_itself(
        list_len in 1usize..300,
        stride in 1usize..50,
    ) {
        // The chosen mode must be no larger than the bit-vector encoding,
        // which is never larger than ~list_len/8 + k * value bytes.
        let updated: Vec<u32> = (0..list_len as u32).step_by(stride).collect();
        let msg = encode_memoized(list_len, &updated, |p| p as u32);
        let bitvec_size = 1 + list_len.div_ceil(8) + updated.len() * 4;
        prop_assert!(msg.len() <= bitvec_size);
    }

    #[test]
    fn adaptive_selection_picks_the_minimum_candidate(
        list_len in 1usize..400,
        seed_positions in proptest::collection::btree_set(0u32..400, 1..150),
        same in any::<bool>(),
    ) {
        let mut updated: Vec<u32> = seed_positions
            .into_iter()
            .filter(|&p| (p as usize) < list_len)
            .collect();
        if updated.is_empty() {
            // Position 0 always fits; keeps the list sorted and non-empty.
            updated.push(0);
        }
        let value_at = |p: usize| if same { 7u32 } else { p as u32 + 1 };
        let msg = encode_memoized(list_len, &updated, value_at);
        // A single value is trivially "all equal" even when `same` is false.
        let identical = same || updated.len() == 1;
        let min = candidate_sizes::<u32>(list_len, &updated, identical, true)
            .into_iter()
            .map(|(_, size)| size)
            .min()
            .expect("at least one candidate");
        prop_assert_eq!(msg.len(), min);
    }

    #[test]
    fn gid_value_encoding_round_trips(
        pairs in proptest::collection::vec((0u32..10_000, any::<u32>()), 0..200),
    ) {
        let typed: Vec<(Gid, u32)> = pairs.iter().map(|&(g, v)| (Gid(g), v)).collect();
        let msg = encode_gid_values(&typed);
        let mut got = Vec::new();
        decode_gid_values::<u32>(&msg, &mut |g, v| got.push((g, v)))
            .expect("own encoding decodes");
        prop_assert_eq!(got, typed);
    }

    #[test]
    fn distributed_bfs_matches_oracle_on_arbitrary_graphs(
        graph in arb_graph(),
        hosts in 1usize..5,
        source_raw in 0u32..60,
    ) {
        let source = Gid(source_raw % graph.num_nodes());
        let cfg = DistConfig {
            hosts,
            policy: Policy::Cvc,
            opts: OptLevel::OSTI,
            engine: EngineKind::Galois,
        };
        let out = driver::Run::new(&graph, Algorithm::Bfs).config(&cfg).source(source).pagerank(Default::default()).launch();
        // bfs on the weighted graph still walks hop counts.
        let oracle = reference::bfs(&graph, source);
        prop_assert_eq!(out.int_labels, oracle);
    }

    #[test]
    fn distributed_cc_matches_oracle_on_arbitrary_graphs(
        graph in arb_graph(),
        hosts in 1usize..5,
    ) {
        let cfg = DistConfig {
            hosts,
            policy: Policy::Hvc,
            opts: OptLevel::OSTI,
            engine: EngineKind::Irgl,
        };
        let out = driver::Run::new(&graph, Algorithm::Cc).config(&cfg).launch();
        prop_assert_eq!(out.int_labels, reference::cc(&graph));
    }

    #[test]
    fn gemini_bfs_matches_oracle_on_arbitrary_graphs(
        graph in arb_graph(),
        hosts in 1usize..5,
        source_raw in 0u32..60,
    ) {
        let source = Gid(source_raw % graph.num_nodes());
        let out = gluon_suite::gemini::run(
            &graph,
            hosts,
            gluon_suite::gemini::GeminiAlgo::Bfs(source),
        );
        prop_assert_eq!(out.int_labels, reference::bfs(&graph, source));
    }

    #[test]
    fn distributed_kcore_matches_oracle_on_arbitrary_graphs(
        graph in arb_graph(),
        hosts in 1usize..5,
        k in 0u32..6,
    ) {
        let cfg = DistConfig {
            hosts,
            policy: Policy::Cvc,
            opts: OptLevel::OSTI,
            engine: EngineKind::Galois,
        };
        let out = driver::Run::kcore(&graph, k).config(&cfg).launch();
        let core = reference::kcore(&graph);
        for (v, (&alive, &c)) in out.int_labels.iter().zip(&core).enumerate() {
            prop_assert_eq!(alive, u32::from(c >= k), "node {} k {}", v, k);
        }
    }

    #[test]
    fn replication_factor_at_least_one(graph in arb_graph(), hosts in 1usize..6) {
        for policy in Policy::ALL {
            let stats = gluon_suite::partition::PartitionStats::of(
                &partition_all(&graph, hosts, policy),
            );
            prop_assert!(stats.replication_factor >= 1.0 - 1e-12);
            prop_assert!(stats.replication_factor <= hosts as f64 + 1e-12);
        }
    }
}
