//! Tests of the paper's *claims about the optimizations* — not just that
//! configurations agree, but that each optimization actually buys what §3
//! and §4 say it buys.

use gluon_suite::algos::{driver, Algorithm, DistConfig, EngineKind};
use gluon_suite::gemini::{self, GeminiAlgo};
use gluon_suite::graph::{gen, max_out_degree_node};
use gluon_suite::net::{run_cluster, Communicator};
use gluon_suite::partition::{partition_on_host, Policy};
use gluon_suite::substrate::{
    DenseBitset, GluonContext, MinField, OptLevel, ReadLocation, SyncSpec, WriteLocation,
};
use gluon_suite::trace::Tracer;

fn bytes_for(opts: OptLevel, policy: Policy, algo: Algorithm) -> u64 {
    let g = gen::twitter_like(4_000, 16, 31);
    let cfg = DistConfig {
        hosts: 6,
        policy,
        opts,
        engine: EngineKind::Galois,
    };
    driver::Run::new(&g, algo)
        .config(&cfg)
        .launch()
        .run
        .total_bytes
}

#[test]
fn temporal_invariance_cuts_volume_roughly_in_half() {
    // §4.1: dropping 32-bit global-IDs from messages carrying 32-bit values
    // should halve the volume (paper: "reducing the communication volume by
    // ~2x"). Codec-v2 compression is disabled on both sides so the ratio
    // measures memoization alone, not the compressed wire modes.
    let unopt = bytes_for(
        OptLevel::UNOPT.without_compression(),
        Policy::Oec,
        Algorithm::Cc,
    );
    let oti = bytes_for(
        OptLevel::OTI.without_compression(),
        Policy::Oec,
        Algorithm::Cc,
    );
    let ratio = unopt as f64 / oti as f64;
    assert!(
        (1.5..4.0).contains(&ratio),
        "expected ~2x volume cut from OTI, got {ratio:.2} ({unopt} vs {oti})"
    );
}

#[test]
fn structural_invariants_eliminate_oec_broadcast() {
    // §2.3/§3.2: under OEC, mirrors have no outgoing edges, so broadcast
    // can be skipped entirely — halving message counts for push
    // algorithms.
    let g = gen::rmat(9, 8, Default::default(), 32);
    let mk = |opts| DistConfig {
        hosts: 4,
        policy: Policy::Oec,
        opts,
        engine: EngineKind::Galois,
    };
    let unopt = driver::Run::new(&g, Algorithm::Bfs)
        .config(&mk(OptLevel::UNOPT))
        .launch();
    let osi = driver::Run::new(&g, Algorithm::Bfs)
        .config(&mk(OptLevel::OSI))
        .launch();
    assert!(
        osi.run.total_messages <= unopt.run.total_messages / 2 + 4,
        "OSI messages {} vs UNOPT {}",
        osi.run.total_messages,
        unopt.run.total_messages
    );
    assert!(osi.run.total_bytes < unopt.run.total_bytes);
}

#[test]
fn osti_is_the_cheapest_level() {
    for policy in [Policy::Oec, Policy::Cvc, Policy::Hvc] {
        let osti = bytes_for(OptLevel::OSTI, policy, Algorithm::Bfs);
        for other in [OptLevel::UNOPT, OptLevel::OSI, OptLevel::OTI] {
            let b = bytes_for(other, policy, Algorithm::Bfs);
            assert!(
                osti <= b,
                "{policy}: OSTI {osti} must not exceed {other} {b}"
            );
        }
    }
}

#[test]
fn memoization_overhead_is_bounded() {
    // §5.6: "the mean runtime overhead is ~4% of the execution time, and
    // the mean memory overhead is ~0.5%". We check the setup bytes are tiny
    // relative to the sync traffic on a communication-heavy run.
    let g = gen::rmat(10, 16, Default::default(), 33);
    let cfg = DistConfig {
        hosts: 4,
        policy: Policy::Cvc,
        opts: OptLevel::OSTI,
        engine: EngineKind::Galois,
    };
    let out = driver::Run::new(&g, Algorithm::Pagerank)
        .config(&cfg)
        .launch();
    let memo_bytes: u64 = out.host_stats.iter().map(|h| h.memo_bytes).sum();
    assert!(
        (memo_bytes as f64) < 0.25 * out.run.total_bytes as f64,
        "memoization setup {memo_bytes} vs sync traffic {}",
        out.run.total_bytes
    );
}

#[test]
fn cvc_reduces_fan_out_versus_unopt_broadcast() {
    // §5.6: with CVC, the optimized broadcast reaches far fewer hosts than
    // the unoptimized pattern. Fan-out = distinct destinations per host.
    let g = gen::twitter_like(4_000, 16, 34);
    let hosts = 9; // 3x3 CVC grid
    let mk = |opts| DistConfig {
        hosts,
        policy: Policy::Cvc,
        opts,
        engine: EngineKind::Galois,
    };
    let unopt = driver::Run::new(&g, Algorithm::Cc)
        .config(&mk(OptLevel::UNOPT))
        .launch();
    let osti = driver::Run::new(&g, Algorithm::Cc)
        .config(&mk(OptLevel::OSTI))
        .launch();
    let max_fan = |out: &gluon_suite::algos::DistOutcome| {
        (0..hosts).map(|h| out.net.fan_out(h)).max().unwrap_or(0)
    };
    assert!(
        max_fan(&osti) <= max_fan(&unopt),
        "OSTI fan-out {} vs UNOPT {}",
        max_fan(&osti),
        max_fan(&unopt)
    );
}

#[test]
fn gluon_beats_gemini_on_volume_for_every_benchmark() {
    let g = gen::twitter_like(3_000, 16, 35);
    let hosts = 8;
    let src = max_out_degree_node(&g);
    let sym = gluon_suite::algos::reference::symmetrize(&g);
    for algo in Algorithm::ALL {
        let (gem_bytes, input) = match algo {
            Algorithm::Bfs => (gemini::run(&g, hosts, GeminiAlgo::Bfs(src)), &g),
            Algorithm::Sssp => (gemini::run(&g, hosts, GeminiAlgo::Sssp(src)), &g),
            Algorithm::Cc => (gemini::run(&sym, hosts, GeminiAlgo::Cc), &g),
            Algorithm::Pagerank => (
                gemini::run(&g, hosts, GeminiAlgo::Pagerank(0.85, 1e-6, 100)),
                &g,
            ),
        };
        let glu = driver::Run::new(input, algo)
            .config(&DistConfig::new(hosts))
            .launch();
        assert!(
            glu.run.total_bytes < gem_bytes.run.total_bytes,
            "{algo}: gluon {} vs gemini {}",
            glu.run.total_bytes,
            gem_bytes.run.total_bytes
        );
    }
}

#[test]
fn sparse_round_never_picks_dense_encoding() {
    // §4.2: the substrate picks the smallest encoding per message. In a
    // round where each host updates at most one mirror of a long mirror
    // list, the per-field wire-mode histogram must show only the compact
    // encodings — empty, bitvec, or indices — and never a dense value list.
    let g = gen::twitter_like(4_000, 16, 37);
    let hosts = 4;
    let tracer = Tracer::new(hosts);
    run_cluster(hosts, |ep| {
        let comm = Communicator::with_tracer(ep, tracer.clone());
        let lg = partition_on_host(&g, Policy::Cvc, &comm);
        let mut ctx = GluonContext::new(&lg, &comm, OptLevel::OTI);
        let n = lg.num_proxies();
        let mut vals = vec![u32::MAX; n as usize];
        let mut bits = DenseBitset::new(n);
        // Mark exactly one updated mirror, picked from the remote with the
        // largest mirror list so dense would be maximally wasteful.
        let pick = (0..hosts)
            .filter(|&h| h != lg.host())
            .max_by_key(|&h| lg.mirrors_on(h).len())
            .and_then(|h| lg.mirrors_on(h).first().copied());
        if let Some(m) = pick {
            vals[m.index()] = lg.host() as u32;
            bits.set(m);
        }
        let mut field = MinField::new(&mut vals);
        let spec = SyncSpec::full(WriteLocation::Destination, ReadLocation::Source);
        ctx.sync(&spec, &mut field, &mut bits);
    });
    let hist = tracer.wire_mode_histogram();
    assert!(!hist.is_empty(), "sync recorded no wire modes");
    // Mode counts are indexed [empty, dense, bitvec, indices, gid_values,
    // idx_delta, run_len, same_idx, same_run].
    let mut compact = 0u64;
    for (field, counts) in &hist {
        assert_eq!(
            counts[1], 0,
            "{field}: a sparse round must never pick Dense ({counts:?})"
        );
        compact += counts[2] + counts[3] + counts[5] + counts[6] + counts[7] + counts[8];
    }
    assert!(
        compact > 0,
        "expected bitvec/indices messages, got {hist:?}"
    );
}

#[test]
fn replication_shapes_match_section_5_2() {
    // CVC replication stays well below the host count and below edge-cut
    // replication on skewed graphs at larger host counts.
    let g = gen::twitter_like(6_000, 16, 36);
    let hosts = 16;
    let cvc = gluon_suite::partition::PartitionStats::of(&gluon_suite::partition::partition_all(
        &g,
        hosts,
        Policy::Cvc,
    ))
    .replication_factor;
    let oec = gluon_suite::partition::PartitionStats::of(&gluon_suite::partition::partition_all(
        &g,
        hosts,
        Policy::Oec,
    ))
    .replication_factor;
    assert!(cvc < oec, "CVC {cvc:.2} vs OEC {oec:.2}");
    assert!(
        cvc < hosts as f64 / 2.0,
        "CVC replication too high: {cvc:.2}"
    );
}
