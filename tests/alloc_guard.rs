//! The allocation-metering guard: steady-state sync rounds perform **zero**
//! heap allocations, and the arena that makes that possible never changes
//! what is computed.
//!
//! Requires the `alloc-meter` feature (`cargo test --release --features
//! alloc-meter --test alloc_guard`): this binary installs
//! [`gluon_meter::CountingAlloc`] as the global allocator, so every
//! allocation on every simulated host is counted.
//!
//! The measured workloads are the steady-state sync shapes of bfs and
//! pagerank — a min-field and a sum-field reconciled with a full
//! reduce+broadcast spec, every proxy dirty every round, constant values —
//! on the rmat16 stand-in with 4 hosts. Constant shape is the honest
//! steady-state contract: the arena recycles buffers *at* their high-water
//! capacity, so a round can only allocate if it is the largest the field
//! has ever seen (see `gluon::SyncArena`). The measurement protocol makes
//! the process-wide counter meaningful: every host runs the 2 warm-up
//! rounds, the cluster barriers, each host snapshots, runs the steady
//! rounds, and snapshots again — every snapshot window contains only
//! steady-state work from every host, so a zero delta on all hosts proves
//! no steady round anywhere allocated.
//!
//! The shapes run both without metrics and under a live `MetricsHub`:
//! the observability layer's publication path (atomic counters, interned
//! names, a preallocated round-series ring) must also add zero
//! steady-state allocations.
//!
//! Everything runs inside a single `#[test]` on purpose: the counters are
//! process-wide, and a concurrently scheduled test (even just its thread
//! spawn) would show up in the measurement window.

use gluon_meter::CountingAlloc;
use gluon_suite::algos::driver::{DistOutcome, Run};
use gluon_suite::algos::{Algorithm, DistConfig, EngineKind, PagerankConfig};
use gluon_suite::graph::{gen, Csr, Lid};
use gluon_suite::metrics::MetricsHub;
use gluon_suite::net::{run_cluster_with_stats, Communicator, NetStats};
use gluon_suite::partition::{partition_on_host, Policy};
use gluon_suite::substrate::{
    DenseBitset, FieldSync, GluonContext, MinField, OptLevel, Pool, ReadLocation, SumField,
    SyncSpec, SyncValue, WriteLocation, ARENA_WARMUP_ROUNDS,
};
use std::sync::OnceLock;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const HOSTS: usize = 4;
const STEADY_ROUNDS: usize = 8;

/// The rmat16 stand-in (shared: generation is expensive and irrelevant to
/// every measurement window).
fn graph() -> &'static Csr {
    static G: OnceLock<Csr> = OnceLock::new();
    G.get_or_init(|| gen::rmat(16, 16, Default::default(), 28))
}

/// Full reduce+broadcast specs: every proxy participates in both
/// patterns, so each round rebuilds every peer payload at a stable size —
/// the shape whose steady state the arena's send-slot rings fully absorb.
const DIST: SyncSpec = SyncSpec::full(WriteLocation::Destination, ReadLocation::Any).named("dist");
const RANK: SyncSpec =
    SyncSpec::full(WriteLocation::Destination, ReadLocation::Source).named("rank");

/// What one host measured.
struct HostReport {
    /// Process-wide allocations during this host's steady window.
    window_allocs: u64,
    /// `SyncStats::steady_state_allocs`: allocations inside this host's
    /// metered (post-warm-up) sync calls.
    sync_allocs: u64,
}

/// One steady-shape round: rewrite every proxy to the same deterministic
/// value, mark every proxy dirty, sync. Nothing here may allocate.
fn round<F: FieldSync>(
    ctx: &mut GluonContext<'_, gluon_suite::net::MemoryTransport>,
    spec: &SyncSpec,
    field: &mut F,
    dirty: &mut DenseBitset,
    n: u32,
) {
    dirty.clear_all();
    for i in 0..n {
        dirty.set(Lid(i));
    }
    ctx.sync(spec, field, dirty);
}

/// Runs the guard workload on the cluster and returns per-host reports
/// plus the whole-cluster [`NetStats`]. `sync_round` wraps the values in
/// the workload's field and runs [`round`] (a closure because the field
/// borrows the value slice).
fn run_guard<V, S>(
    threads: usize,
    spawn: bool,
    hub: &MetricsHub,
    value_of: impl Fn(usize) -> V + Sync,
    sync_round: S,
) -> (Vec<HostReport>, NetStats)
where
    V: SyncValue,
    S: Fn(
            &mut GluonContext<'_, gluon_suite::net::MemoryTransport>,
            &mut [V],
            &mut DenseBitset,
            u32,
        ) + Sync,
{
    run_cluster_with_stats(HOSTS, NetStats::new(HOSTS), |net| {
        let comm = Communicator::new(net);
        let lg = partition_on_host(graph(), Policy::Cvc, &comm);
        let pool = if spawn {
            Pool::new(threads)
        } else {
            Pool::inline(threads)
        };
        // Metric registration (name interning, ring preallocation) happens
        // here, before the measured window: the steady-state publication
        // path is all atomics and in-place ring writes.
        let mut ctx = GluonContext::new(&lg, &comm, OptLevel::default())
            .with_pool(pool)
            .with_metrics(hub.host(comm.rank()));
        let n = lg.num_proxies();
        let mut vals: Vec<V> = (0..n as usize).map(&value_of).collect();
        let mut dirty = DenseBitset::new(n);
        for _ in 0..ARENA_WARMUP_ROUNDS {
            for (i, v) in vals.iter_mut().enumerate() {
                *v = value_of(i);
            }
            sync_round(&mut ctx, &mut vals, &mut dirty, n);
        }
        comm.barrier();
        let before = gluon_meter::snapshot();
        for _ in 0..STEADY_ROUNDS {
            for (i, v) in vals.iter_mut().enumerate() {
                *v = value_of(i);
            }
            sync_round(&mut ctx, &mut vals, &mut dirty, n);
        }
        let after = gluon_meter::snapshot();
        comm.barrier();
        HostReport {
            window_allocs: after.allocs_since(&before),
            sync_allocs: ctx.stats().steady_state_allocs,
        }
    })
}

fn assert_zero_allocs(name: &str, threads: usize, reports: &[HostReport], stats: &NetStats) {
    for (rank, r) in reports.iter().enumerate() {
        assert_eq!(
            r.window_allocs, 0,
            "{name}/{threads}t host {rank}: {} allocations in the steady window \
             (every steady-state round must be allocation-free)",
            r.window_allocs
        );
        assert_eq!(
            r.sync_allocs, 0,
            "{name}/{threads}t host {rank}: steady_state_allocs = {}",
            r.sync_allocs
        );
    }
    // The zero above must be earned by recycling, not by idleness: the
    // steady rounds moved traffic and the pools were actually hit.
    assert!(
        stats.pool_hits() > 0,
        "{name}/{threads}t: no pool hits recorded — arena not exercised"
    );
    assert!(
        stats.pool_high_water_bytes() > 0,
        "{name}/{threads}t: pool high-water never recorded"
    );
}

fn bfs_shape(threads: usize, spawn: bool, hub: &MetricsHub) -> (Vec<HostReport>, NetStats) {
    run_guard(
        threads,
        spawn,
        hub,
        |i| (i as u32) % 977,
        |ctx, vals, dirty, n| round(ctx, &DIST, &mut MinField::new(vals), dirty, n),
    )
}

fn pagerank_shape(threads: usize, spawn: bool, hub: &MetricsHub) -> (Vec<HostReport>, NetStats) {
    run_guard(
        threads,
        spawn,
        hub,
        |i| ((i % 13) as f64) * 0.5 + 1.0,
        |ctx, vals, dirty, n| round(ctx, &RANK, &mut SumField::new(vals), dirty, n),
    )
}

fn launch(algo: Algorithm, threads: usize, arena: bool) -> DistOutcome {
    Run::new(graph(), algo)
        .config(&DistConfig {
            hosts: HOSTS,
            policy: Policy::Cvc,
            opts: OptLevel::default(),
            engine: EngineKind::Galois,
        })
        .pagerank(PagerankConfig {
            max_iters: 10,
            ..Default::default()
        })
        .threads(threads)
        .arena(arena)
        .launch()
}

/// The arena must be invisible in every observable: labels, rank bits,
/// round counts, and the wire counters (bytes and messages). Pool
/// hit/miss counters legitimately differ — they are the only thing the
/// toggle is allowed to change.
fn assert_arena_toggle_invisible(algo: Algorithm, threads: usize) {
    let on = launch(algo, threads, true);
    let off = launch(algo, threads, false);
    let ctx = format!("{algo:?}/{threads}t");
    assert_eq!(on.rounds, off.rounds, "{ctx}: rounds diverged");
    assert_eq!(on.int_labels, off.int_labels, "{ctx}: labels diverged");
    let on_bits: Vec<u64> = on.ranks.iter().map(|r| r.to_bits()).collect();
    let off_bits: Vec<u64> = off.ranks.iter().map(|r| r.to_bits()).collect();
    assert_eq!(on_bits, off_bits, "{ctx}: rank bits diverged");
    assert_eq!(
        on.run.total_bytes, off.run.total_bytes,
        "{ctx}: wire bytes diverged"
    );
    assert_eq!(
        on.run.total_messages, off.run.total_messages,
        "{ctx}: message count diverged"
    );
}

#[test]
fn steady_state_sync_is_allocation_free_and_arena_is_invisible() {
    // Zero allocations per steady round, at 1 and 4 threads, for both
    // steady-state shapes. Inline pools: thread *spawning* allocates, the
    // sync path itself must not.
    for threads in [1usize, 4] {
        let (reports, stats) = bfs_shape(threads, false, &MetricsHub::disabled());
        assert_zero_allocs("bfs", threads, &reports, &stats);
        let (reports, stats) = pagerank_shape(threads, false, &MetricsHub::disabled());
        assert_zero_allocs("pagerank", threads, &reports, &stats);
    }

    // The metrics layer must be free where it matters: with a live hub
    // publishing counters, per-mode histograms, and per-round series rows,
    // the steady window still allocates exactly nothing (the round ring
    // is preallocated, counters are atomics, names are interned at
    // registration).
    for threads in [1usize, 4] {
        let hub = MetricsHub::new(HOSTS);
        let (reports, stats) = bfs_shape(threads, false, &hub);
        assert_zero_allocs("bfs+metrics", threads, &reports, &stats);
        assert!(
            hub.counter_across_hosts("sync_rounds") > 0
                && hub.counter_across_hosts("bytes_sent") > 0,
            "bfs+metrics/{threads}t: the hub recorded nothing — guard measured a dead layer"
        );
    }

    // With a real spawning pool the per-round cost is the pool's own
    // bookkeeping — a small constant, not a function of graph size (rmat16
    // has 65k nodes; anything O(n) per round would blow far past this).
    let (reports, _) = bfs_shape(4, true, &MetricsHub::disabled());
    for (rank, r) in reports.iter().enumerate() {
        let per_round = r.window_allocs / STEADY_ROUNDS as u64;
        assert!(
            per_round < 1000,
            "spawning pool host {rank}: {per_round} allocs/round — \
             steady-state sync is no longer O(1) in allocations"
        );
    }

    // Determinism: toggling the arena changes nothing observable.
    for algo in [Algorithm::Bfs, Algorithm::Pagerank] {
        for threads in [1usize, 4] {
            assert_arena_toggle_invisible(algo, threads);
        }
    }
}
