//! Golden wire-format snapshots: one byte-exact fixture per wire mode.
//!
//! These hex strings are the *frozen* wire format. A failure here means
//! the bytes Gluon puts on the wire changed — which silently breaks
//! cross-version clusters — and must be treated as a format revision
//! (bump the mode byte, keep the old decoder), not a test update.

use gluon_suite::graph::Gid;
use gluon_suite::substrate::encode::{
    candidate_sizes, decode_gid_values, decode_memoized, encode_gid_values, encode_memoized,
    encode_memoized_as, WireMode, NUM_WIRE_MODES,
};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Asserts the payload matches the frozen hex and that the production
/// decoder recovers exactly `expect` from it.
fn check(payload: &[u8], golden_hex: &str, list_len: usize, expect: &[(usize, u32)]) {
    assert_eq!(hex(payload), golden_hex, "wire format changed");
    let mut got = Vec::new();
    decode_memoized::<u32>(payload, list_len, &mut |p, v| got.push((p, v)))
        .expect("golden payload decodes");
    assert_eq!(got, expect);
}

#[test]
fn empty_mode_golden() {
    let msg = encode_memoized::<u32>(8, &[], |_| 0);
    assert_eq!(WireMode::of(&msg), WireMode::Empty);
    check(&msg, "00", 8, &[]);
}

#[test]
fn dense_mode_golden() {
    // mode 01, then the full value list little-endian.
    let msg = encode_memoized(4, &[0, 1, 2, 3], |p| p as u32 + 1);
    assert_eq!(WireMode::of(&msg), WireMode::Dense);
    check(
        &msg,
        "0101000000020000000300000004000000",
        4,
        &[(0, 1), (1, 2), (2, 3), (3, 4)],
    );
}

#[test]
fn bitvec_mode_golden() {
    // mode 02; bits LSB-first per byte: positions {0,3} -> 0x09,
    // {8,15} -> 0x81; then the 4 updated values.
    let msg = encode_memoized_as(WireMode::Bitvec, 16, &[0, 3, 8, 15], |p| p as u32 + 1)
        .expect("bitvec applies");
    check(
        &msg,
        "02098101000000040000000900000010000000",
        16,
        &[(0, 1), (3, 4), (8, 9), (15, 16)],
    );
}

#[test]
fn indices_mode_golden() {
    // mode 03; u32-LE count, u32-LE positions, values.
    let msg =
        encode_memoized_as(WireMode::Indices, 16, &[2, 9], |p| p as u32 + 1).expect("applies");
    check(
        &msg,
        "03020000000200000009000000030000000a000000",
        16,
        &[(2, 3), (9, 10)],
    );
}

#[test]
fn gid_values_mode_golden() {
    // mode 04; (u32-LE gid, value) pairs.
    let pairs = [(Gid(7), 0xAABB_CCDDu32), (Gid(300), 1)];
    let msg = encode_gid_values(&pairs);
    assert_eq!(hex(&msg), "0407000000ddccbbaa2c01000001000000");
    let mut got = Vec::new();
    decode_gid_values::<u32>(&msg, &mut |g, v| got.push((g, v))).expect("golden decodes");
    assert_eq!(got, pairs);
}

#[test]
fn indices_delta_mode_golden() {
    // mode 05; varint count 02, varint first 03, varint gap 0x4d90
    // (9876 - 3 - 1 = 9872 = LEB128 90 4d), then both values.
    let msg = encode_memoized_as(WireMode::IndicesDelta, 10_000, &[3, 9_876], |p| {
        p as u32 + 1
    })
    .expect("applies");
    check(
        &msg,
        "050203904d0400000095260000",
        10_000,
        &[(3, 4), (9_876, 9_877)],
    );
    // This is also what the adaptive selector picks for so sparse a set.
    let adaptive = encode_memoized(10_000, &[3, 9_876], |p| p as u32 + 1);
    assert_eq!(hex(&adaptive), hex(&msg));
}

#[test]
fn run_length_mode_golden() {
    // mode 06; varint run count 02, runs [10 unset, 4 set], then the 4
    // distinct values (the implicit unset tail is not encoded).
    let updated: Vec<u32> = (10..14).collect();
    let msg =
        encode_memoized_as(WireMode::RunLength, 64, &updated, |p| p as u32 + 1).expect("applies");
    check(
        &msg,
        "06020a040b0000000c0000000d0000000e000000",
        64,
        &[(10, 11), (11, 12), (12, 13), (13, 14)],
    );
}

#[test]
fn same_indices_delta_mode_golden() {
    // mode 07; delta metadata as mode 05, then ONE shared value.
    let msg = encode_memoized_as(WireMode::SameIndicesDelta, 10_000, &[3, 9_876], |_| 7u32)
        .expect("applies");
    check(&msg, "070203904d07000000", 10_000, &[(3, 7), (9_876, 7)]);
}

#[test]
fn same_run_length_mode_golden() {
    // mode 08; run metadata [10 unset, 190 set] (190 = LEB128 be 01), then
    // one u64 value. The adaptive selector picks this for an all-equal
    // broadcast, so no forcing is needed.
    let updated: Vec<u32> = (10..200).collect();
    let msg = encode_memoized(4_000, &updated, |_| 7u64);
    assert_eq!(WireMode::of(&msg), WireMode::SameRunLength);
    assert_eq!(hex(&msg), "08020abe010700000000000000");
    let mut got = Vec::new();
    decode_memoized::<u64>(&msg, 4_000, &mut |p, v| got.push((p, v))).expect("golden decodes");
    assert_eq!(got.len(), 190);
    assert!(got
        .iter()
        .enumerate()
        .all(|(i, &(p, v))| p == i + 10 && v == 7));
}

#[test]
fn mode_bytes_are_frozen() {
    // The mode byte is the wire-format version tag; renumbering breaks
    // every mixed-version cluster.
    assert_eq!(NUM_WIRE_MODES, 9);
    let frozen = [
        (WireMode::Empty, 0u8, "empty"),
        (WireMode::Dense, 1, "dense"),
        (WireMode::Bitvec, 2, "bitvec"),
        (WireMode::Indices, 3, "indices"),
        (WireMode::GidValues, 4, "gid_values"),
        (WireMode::IndicesDelta, 5, "idx_delta"),
        (WireMode::RunLength, 6, "run_len"),
        (WireMode::SameIndicesDelta, 7, "same_idx"),
        (WireMode::SameRunLength, 8, "same_run"),
    ];
    for (mode, byte, name) in frozen {
        assert_eq!(mode as u8, byte);
        assert_eq!(WireMode::from_byte(byte), Some(mode));
        assert_eq!(mode.name(), name);
    }
}

#[test]
fn adaptive_choice_is_minimal_over_a_dense_sweep() {
    // Deterministic companion to the proptest in proptests.rs: for every
    // small list and stride pattern, the chosen payload length equals the
    // minimum over the published candidate table.
    for list_len in 1usize..40 {
        for stride in 1..=list_len {
            for offset in 0..stride.min(3) {
                let updated: Vec<u32> = (offset as u32..list_len as u32).step_by(stride).collect();
                if updated.is_empty() {
                    continue;
                }
                for same in [false, true] {
                    let msg =
                        encode_memoized(list_len, &updated, |p| if same { 9u32 } else { p as u32 });
                    let identical = same || updated.len() == 1;
                    let min = candidate_sizes::<u32>(list_len, &updated, identical, true)
                        .into_iter()
                        .map(|(_, s)| s)
                        .min()
                        .expect("candidates");
                    assert_eq!(
                        msg.len(),
                        min,
                        "len {list_len} stride {stride} offset {offset} same {same}"
                    );
                }
            }
        }
    }
}
