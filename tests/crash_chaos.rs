//! Crash-chaos suite: hosts die mid-computation and the supervisor behind
//! [`Run::try_launch`] must bring the cluster back — restore every host
//! from the latest complete checkpoint epoch, replay forward, and land on
//! results bit-identical to the crash-free run. Unrecoverable situations
//! (every host pinned dead, decode failures, exhausted retransmits) must
//! surface as *typed* errors within the failure detector's timeout —
//! never a hang, never a panic.
//!
//! Gated behind the default-on `chaos` feature alongside the lossy-network
//! matrix in `tests/chaos.rs`.

use bytes::Bytes;
use gluon_suite::algos::{Algorithm, DistConfig, EngineKind, FailurePolicy, Run, RunError};
use gluon_suite::graph::{gen, Csr};
use gluon_suite::net::{
    CrashRule, DetectorConfig, Envelope, FaultCounters, FaultPlan, FaultyTransport,
    MemoryTransport, NetError, NetStats, ReliableConfig, RetryPolicy, Transport, MAX_USER_TAG,
};
use gluon_suite::partition::Policy;
use gluon_suite::substrate::{OptLevel, SyncError};
use gluon_suite::trace::Tracer;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const HOSTS: usize = 3;
const SEEDS: [u64; 3] = [3, 77, 4242];
const POLICIES: [Policy; 2] = [Policy::Oec, Policy::Cvc];

/// Reliability layer with the heartbeat failure detector armed and tuned
/// for test-speed detection (a dead peer is declared within ~200ms).
fn detecting() -> ReliableConfig {
    ReliableConfig {
        retry: RetryPolicy::default(),
        detector: Some(DetectorConfig::default().with_max_silence(Duration::from_millis(200))),
    }
}

fn chaos_graph() -> Csr {
    gen::rmat(7, 8, Default::default(), 42)
}

/// The tentpole matrix: algorithm × {OEC, CVC} × seeds, one host killed
/// mid-run at a chosen sync round. The supervised run must detect the
/// silence, restore from the latest complete checkpoint epoch, replay,
/// and produce labels/ranks/round-counts bit-identical to the crash-free
/// baseline.
fn check_recovery_matrix(algo: Algorithm, engine: EngineKind, crash_round: u64) {
    let g = chaos_graph();
    for policy in POLICIES {
        let cfg = DistConfig {
            hosts: HOSTS,
            policy,
            opts: OptLevel::OSTI,
            engine,
        };
        let baseline = Run::new(&g, algo).config(&cfg).launch();
        assert!(
            u64::from(baseline.rounds) >= crash_round.min(4),
            "{algo:?}/{policy:?}: baseline too short to host the crash"
        );
        for (i, seed) in SEEDS.into_iter().enumerate() {
            let victim = 1 + (i % (HOSTS - 1));
            let counters = FaultCounters::new();
            let shared = counters.clone();
            let plan = FaultPlan::none(seed).with_crash(CrashRule::at(victim, crash_round));
            let tracer = Tracer::new(HOSTS);
            let out = Run::new(&g, algo)
                .config(&cfg)
                .tracer(&tracer)
                .checkpoint_every(2)
                .reliable(detecting())
                .transport_per_attempt(move |ep, attempt| {
                    FaultyTransport::new(ep, plan.for_attempt(attempt), shared.clone())
                })
                .try_launch()
                .unwrap_or_else(|e| panic!("{algo:?}/{policy:?}/seed {seed}: {e}"));
            let ctx = format!("{algo:?} / {policy:?} / seed {seed}");
            assert!(counters.crashed() >= 1, "{ctx}: the crash never fired");
            assert!(out.recoveries >= 1, "{ctx}: result came without recovery");
            assert!(!out.degraded, "{ctx}: full recovery must not be degraded");
            assert!(
                tracer.peer_down_events() >= 1,
                "{ctx}: the failure detector never declared the victim down"
            );
            assert!(
                tracer.recovery_events() >= 1,
                "{ctx}: no recovery event was traced"
            );
            assert_eq!(out.rounds, baseline.rounds, "{ctx}: round count diverged");
            assert_eq!(
                out.int_labels, baseline.int_labels,
                "{ctx}: integer labels diverged"
            );
            let got: Vec<u64> = out.ranks.iter().map(|r| r.to_bits()).collect();
            let want: Vec<u64> = baseline.ranks.iter().map(|r| r.to_bits()).collect();
            assert_eq!(got, want, "{ctx}: ranks diverged (bitwise)");
        }
    }
}

#[test]
fn bfs_recovers_bit_identical_from_a_single_host_crash() {
    check_recovery_matrix(Algorithm::Bfs, EngineKind::Ligra, 3);
}

#[test]
fn cc_recovers_bit_identical_from_a_single_host_crash() {
    check_recovery_matrix(Algorithm::Cc, EngineKind::Ligra, 3);
}

#[test]
fn pagerank_recovers_bit_identical_from_a_single_host_crash() {
    // Sync round 20 is mid-iteration 7 of ~53; checkpoints cover epochs
    // 2, 4, and 6 by then, so the recovery genuinely restores state
    // instead of recomputing from scratch.
    check_recovery_matrix(Algorithm::Pagerank, EngineKind::Galois, 20);
}

/// A crash-free supervised run is the infallible launch, bit for bit —
/// including with checkpointing enabled (snapshots must observe, never
/// perturb).
#[test]
fn supervised_crash_free_run_matches_launch_bitwise() {
    let g = chaos_graph();
    for algo in [Algorithm::Bfs, Algorithm::Cc, Algorithm::Pagerank] {
        let cfg = DistConfig {
            hosts: HOSTS,
            policy: Policy::Cvc,
            opts: OptLevel::OSTI,
            engine: EngineKind::Galois,
        };
        let baseline = Run::new(&g, algo).config(&cfg).launch();
        let out = Run::new(&g, algo)
            .config(&cfg)
            .checkpoint_every(2)
            .reliable(detecting())
            .try_launch()
            .unwrap_or_else(|e| panic!("{algo:?}: crash-free supervised run failed: {e}"));
        assert_eq!(out.recoveries, 0, "{algo:?}: phantom recovery");
        assert!(!out.degraded, "{algo:?}: phantom degradation");
        assert_eq!(out.rounds, baseline.rounds, "{algo:?}: rounds diverged");
        assert_eq!(out.int_labels, baseline.int_labels, "{algo:?}");
        let got: Vec<u64> = out.ranks.iter().map(|r| r.to_bits()).collect();
        let want: Vec<u64> = baseline.ranks.iter().map(|r| r.to_bits()).collect();
        assert_eq!(got, want, "{algo:?}: ranks diverged (bitwise)");
    }
}

/// Two of three hosts pinned dead on *every* attempt: recovery cannot
/// succeed, and the supervisor must say so with a typed error — promptly
/// (detector timeout per attempt, bounded attempts), not by hanging.
#[test]
fn unrecoverable_multi_crash_returns_a_typed_error_within_the_timeout() {
    let g = chaos_graph();
    let cfg = DistConfig {
        hosts: HOSTS,
        policy: Policy::Cvc,
        opts: OptLevel::OSTI,
        engine: EngineKind::Ligra,
    };
    let plan = FaultPlan::none(9)
        .with_crash(CrashRule::at(1, 2).every_attempt())
        .with_crash(CrashRule::at(2, 3).every_attempt());
    let started = Instant::now();
    let err = Run::new(&g, Algorithm::Cc)
        .config(&cfg)
        .checkpoint_every(1)
        .max_recoveries(1)
        .reliable(detecting())
        .transport_per_attempt(move |ep, attempt| {
            FaultyTransport::new(ep, plan.for_attempt(attempt), FaultCounters::new())
        })
        .try_launch()
        .expect_err("a permanently dead majority cannot be recovered from");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(30),
        "unrecoverable failure took {elapsed:?} to surface"
    );
    let RunError::Unrecoverable { attempts, last } = err else {
        panic!("expected Unrecoverable, got {err}");
    };
    assert_eq!(attempts, 2, "max_recoveries(1) allows exactly two attempts");
    let SyncError::Net(net) = last else {
        panic!("expected a network failure, got {last}");
    };
    assert!(net.is_peer_failure(), "blamed a non-failure: {net}");
}

/// `AbortClean`: the first detected failure ends the run with a typed
/// error and no restart is attempted.
#[test]
fn abort_clean_stops_at_the_first_failure() {
    let g = chaos_graph();
    let cfg = DistConfig {
        hosts: HOSTS,
        policy: Policy::Oec,
        opts: OptLevel::OSTI,
        engine: EngineKind::Ligra,
    };
    let counters = FaultCounters::new();
    let shared = counters.clone();
    let plan = FaultPlan::none(5).with_crash(CrashRule::at(1, 2));
    let err = Run::new(&g, Algorithm::Bfs)
        .config(&cfg)
        .checkpoint_every(1)
        .on_failure(FailurePolicy::AbortClean)
        .reliable(detecting())
        .transport_per_attempt(move |ep, attempt| {
            FaultyTransport::new(ep, plan.for_attempt(attempt), shared.clone())
        })
        .try_launch()
        .expect_err("AbortClean must not mask the failure");
    let RunError::Aborted { host, error } = err else {
        panic!("expected Aborted, got {err}");
    };
    assert!(host < HOSTS, "blamed nonexistent host {host}");
    let SyncError::Net(net) = error else {
        panic!("expected a network failure, got {error}");
    };
    assert!(net.is_peer_failure(), "blamed a non-failure: {net}");
    assert_eq!(
        counters.crashed(),
        1,
        "AbortClean must not relaunch (the crash would have re-armed)"
    );
}

/// `ContinueStale`: with the victim pinned dead on every attempt, the
/// supervisor serves the last complete checkpoint epoch as a degraded
/// outcome. Stale min-relaxation labels over-approximate the fixpoint, so
/// every served label must be >= the converged one.
#[test]
fn continue_stale_serves_the_last_checkpoint_as_degraded() {
    let g = chaos_graph();
    let cfg = DistConfig {
        hosts: HOSTS,
        policy: Policy::Cvc,
        opts: OptLevel::OSTI,
        engine: EngineKind::Ligra,
    };
    let baseline = Run::new(&g, Algorithm::Bfs).config(&cfg).launch();
    assert!(
        baseline.rounds >= 3,
        "graph converged too fast for the test"
    );
    let plan = FaultPlan::none(21).with_crash(CrashRule::at(2, 3).every_attempt());
    let out = Run::new(&g, Algorithm::Bfs)
        .config(&cfg)
        .checkpoint_every(1)
        .on_failure(FailurePolicy::ContinueStale)
        .reliable(detecting())
        .transport_per_attempt(move |ep, attempt| {
            FaultyTransport::new(ep, plan.for_attempt(attempt), FaultCounters::new())
        })
        .try_launch()
        .expect("ContinueStale with a complete epoch must produce an outcome");
    assert!(out.degraded, "stale outcome must be marked degraded");
    assert!(out.recoveries >= 1, "degradation counts as a recovery");
    assert!(
        out.rounds < baseline.rounds,
        "stale rounds {} must predate convergence at {}",
        out.rounds,
        baseline.rounds
    );
    assert!(out.rounds >= 1, "at least one epoch must have been served");
    assert_eq!(out.int_labels.len(), baseline.int_labels.len());
    for (node, (&stale, &fixed)) in out.int_labels.iter().zip(&baseline.int_labels).enumerate() {
        assert!(
            stale >= fixed,
            "node {node}: stale label {stale} undercuts the fixpoint {fixed}"
        );
    }
}

/// Retransmit exhaustion (reliability without a detector): the typed
/// error must carry the sync round the failure happened at, and reach the
/// `try_launch` caller promptly.
#[test]
fn retransmit_exhaustion_surfaces_with_the_offending_round() {
    let g = chaos_graph();
    let cfg = DistConfig {
        hosts: 2,
        policy: Policy::Oec,
        opts: OptLevel::OSTI,
        engine: EngineKind::Ligra,
    };
    let fail_fast = ReliableConfig {
        retry: RetryPolicy {
            initial_rto: Duration::from_micros(200),
            backoff: 2,
            max_rto: Duration::from_millis(2),
            max_retries: 4,
            window: 8,
            recv_budget: Duration::from_millis(400),
        },
        detector: None,
    };
    let plan = FaultPlan::none(13).with_crash(CrashRule::at(1, 2));
    let started = Instant::now();
    let err = Run::new(&g, Algorithm::Bfs)
        .config(&cfg)
        .on_failure(FailurePolicy::AbortClean)
        .reliable(fail_fast)
        .transport_per_attempt(move |ep, attempt| {
            FaultyTransport::new(ep, plan.for_attempt(attempt), FaultCounters::new())
        })
        .try_launch()
        .expect_err("a dead peer with no detector must exhaust retransmits");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(20),
        "retransmit exhaustion took {elapsed:?} to surface"
    );
    let RunError::Aborted { host: 0, error } = err else {
        panic!("expected host 0 to abort on retransmit exhaustion, got {err}");
    };
    let SyncError::Net(net @ NetError::PeerUnreachable { peer: 1, round, .. }) = error else {
        panic!("expected PeerUnreachable blaming host 1, got {error}");
    };
    assert!(round >= 1, "the error must carry the offending sync round");
    assert_eq!(net.round(), Some(round));
}

/// Truncates every armed sync-phase payload in flight, deterministically
/// producing undecodable frames on an unprotected wire. Setup traffic
/// (partitioning, memoization handshake) runs before any `note_round`, so
/// it passes untouched.
#[derive(Debug)]
struct TruncatingTransport {
    inner: MemoryTransport,
    active: AtomicBool,
}

impl TruncatingTransport {
    fn new(inner: MemoryTransport) -> TruncatingTransport {
        TruncatingTransport {
            inner,
            active: AtomicBool::new(false),
        }
    }
}

impl Transport for TruncatingTransport {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn try_send(&self, dst: usize, tag: u32, payload: Bytes) -> Result<(), NetError> {
        // Only user-range (sync-phase) payloads are mangled; collectives
        // keep working so the BSP rounds stay in lock-step and the decode
        // error is the only anomaly hosts can see.
        let payload = if self.active.load(Ordering::SeqCst)
            && dst != self.rank()
            && tag < MAX_USER_TAG
            && payload.len() > 1
        {
            Bytes::copy_from_slice(&payload[..payload.len() / 2])
        } else {
            payload
        };
        self.inner.try_send(dst, tag, payload)
    }

    fn try_recv(&self, src: usize, tag: u32) -> Result<Bytes, NetError> {
        self.inner.try_recv(src, tag)
    }

    fn try_recv_any(&self, tag: u32) -> Result<Envelope, NetError> {
        self.inner.try_recv_any(tag)
    }

    fn try_recv_any_timeout(&self, tag: u32, timeout: Duration) -> Result<Envelope, NetError> {
        self.inner.try_recv_any_timeout(tag, timeout)
    }

    fn note_round(&self, round: u64) {
        if round >= 1 {
            self.active.store(true, Ordering::SeqCst);
        }
        self.inner.note_round(round);
    }

    fn cancelled(&self) -> Option<NetError> {
        self.inner.cancelled()
    }

    fn stats(&self) -> &NetStats {
        self.inner.stats()
    }
}

/// A payload that cannot decode is a deterministic failure: replaying the
/// same rounds reproduces it, so the supervisor must hand the caller a
/// typed [`RunError::Host`] wrapping [`SyncError::Decode`] instead of
/// burning the recovery budget — and certainly instead of panicking or
/// hanging.
#[test]
fn undecodable_payloads_reach_the_caller_as_typed_decode_errors() {
    let g = chaos_graph();
    let cfg = DistConfig {
        hosts: HOSTS,
        policy: Policy::Cvc,
        opts: OptLevel::OSTI,
        engine: EngineKind::Ligra,
    };
    let started = Instant::now();
    let err = Run::new(&g, Algorithm::Cc)
        .config(&cfg)
        .checkpoint_every(2)
        .transport(TruncatingTransport::new)
        .try_launch()
        .expect_err("truncated payloads must not produce a result");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(20),
        "decode failure took {elapsed:?} to surface"
    );
    let RunError::Host { host, error } = err else {
        panic!("expected Host, got {err}");
    };
    assert!(host < HOSTS, "blamed nonexistent host {host}");
    let SyncError::Decode { peer, error: cause } = error else {
        panic!("expected Decode, got {error}");
    };
    assert!(peer < HOSTS, "blamed nonexistent peer {peer}");
    let rendered = cause.to_string();
    assert!(!rendered.is_empty(), "decode cause must render");
}

/// Workloads without a fallible path are refused up front with a typed
/// error, not a panic deep inside the cluster.
#[test]
fn unsupported_workloads_get_a_typed_error() {
    let g = chaos_graph();
    match Run::kcore(&g, 3).try_launch() {
        Err(RunError::Unsupported(what)) => assert_eq!(what, "kcore"),
        other => panic!("expected Unsupported, got {other:?}"),
    }
    let src = gluon_suite::graph::max_out_degree_node(&g);
    match Run::betweenness(&g, src).try_launch() {
        Err(RunError::Unsupported(what)) => assert_eq!(what, "betweenness"),
        other => panic!("expected Unsupported, got {other:?}"),
    }
}
