//! The determinism contract of the intra-host parallel runtime: running
//! any benchmark with any thread count produces results *bit-identical* to
//! the single-threaded run — labels, pagerank ranks (compared bitwise),
//! round counts, and every wire-traffic counter. The pool chunks work on
//! fixed boundaries and combines per-chunk candidates in order, so thread
//! scheduling can never leak into results or into what goes on the wire.

use gluon_suite::algos::driver::{DistOutcome, Run};
use gluon_suite::algos::{Algorithm, DistConfig, EngineKind};
use gluon_suite::graph::{gen, with_random_weights, Csr};
use gluon_suite::net::{FaultCounters, FaultPlan, FaultyTransport, ReliableTransport};
use gluon_suite::partition::Policy;
use gluon_suite::substrate::OptLevel;

const HOSTS: usize = 3;
const THREADS: [usize; 4] = [1, 2, 5, 8];
const POLICIES: [Policy; 2] = [Policy::Oec, Policy::Cvc];

fn matrix_graph(algo: Algorithm) -> Csr {
    let g = gen::rmat(12, 8, Default::default(), 77);
    if algo == Algorithm::Sssp {
        with_random_weights(&g, 13, 9)
    } else {
        g
    }
}

fn launch(g: &Csr, algo: Algorithm, cfg: &DistConfig, threads: usize) -> DistOutcome {
    Run::new(g, algo).config(cfg).threads(threads).launch()
}

/// Every observable of `out` that the determinism contract covers must
/// equal `baseline`'s, bit for bit.
fn assert_identical(out: &DistOutcome, baseline: &DistOutcome, ctx: &str) {
    assert_eq!(out.rounds, baseline.rounds, "{ctx}: round count diverged");
    assert_eq!(
        out.int_labels, baseline.int_labels,
        "{ctx}: integer labels diverged"
    );
    let got: Vec<u64> = out.ranks.iter().map(|r| r.to_bits()).collect();
    let want: Vec<u64> = baseline.ranks.iter().map(|r| r.to_bits()).collect();
    assert_eq!(got, want, "{ctx}: ranks diverged (bitwise)");
    assert_eq!(
        out.run.total_bytes, baseline.run.total_bytes,
        "{ctx}: wire bytes diverged"
    );
    assert_eq!(
        out.run.total_messages, baseline.run.total_messages,
        "{ctx}: message count diverged"
    );
    assert_eq!(
        out.run.max_work_units, baseline.run.max_work_units,
        "{ctx}: sequential work accounting diverged"
    );
}

fn check_thread_matrix(algo: Algorithm, engine: EngineKind) {
    let g = matrix_graph(algo);
    for policy in POLICIES {
        let cfg = DistConfig {
            hosts: HOSTS,
            policy,
            opts: OptLevel::OSTI,
            engine,
        };
        let baseline = launch(&g, algo, &cfg, 1);
        assert!(baseline.rounds > 0, "{algo} ran no rounds");
        for threads in THREADS {
            let out = launch(&g, algo, &cfg, threads);
            let ctx = format!("{algo} / {engine} / {policy:?} / {threads} threads");
            assert_identical(&out, &baseline, &ctx);
        }
    }
}

#[test]
fn bfs_is_thread_count_invariant() {
    check_thread_matrix(Algorithm::Bfs, EngineKind::Galois);
}

#[test]
fn sssp_is_thread_count_invariant() {
    check_thread_matrix(Algorithm::Sssp, EngineKind::Galois);
}

#[test]
fn pagerank_is_thread_count_invariant() {
    check_thread_matrix(Algorithm::Pagerank, EngineKind::Galois);
}

#[test]
fn cc_is_thread_count_invariant() {
    check_thread_matrix(Algorithm::Cc, EngineKind::Galois);
}

#[test]
fn every_engine_is_thread_count_invariant_on_bfs() {
    // The per-algorithm matrix above pins the Galois engine; the Ligra and
    // IrGL parallel paths (snapshot edgeMap and bulk kernels) get the same
    // treatment here on the cheapest benchmark.
    for engine in [EngineKind::Ligra, EngineKind::Irgl] {
        check_thread_matrix(Algorithm::Bfs, engine);
    }
}

#[test]
fn parallel_run_reports_speedup_without_changing_results() {
    // The pool's work meter must attribute a shorter critical path at
    // higher thread counts — that is the whole point — while the results
    // stay frozen. Single host: the intra-host scaling measurement with no
    // partition skew in the way (multi-host runs report the *worst* host,
    // which on a tiny graph can be one hub vertex).
    let g = matrix_graph(Algorithm::Pagerank);
    let cfg = DistConfig::new(1);
    let seq = launch(&g, Algorithm::Pagerank, &cfg, 1);
    let par = launch(&g, Algorithm::Pagerank, &cfg, 4);
    assert_identical(&par, &seq, "pagerank threads=4");
    assert!(
        (seq.run.parallel_speedup() - 1.0).abs() < 1e-9,
        "sequential run must report speedup 1.0, got {}",
        seq.run.parallel_speedup()
    );
    assert!(
        par.run.parallel_speedup() > 2.0,
        "4 threads must report > 2x measured speedup, got {:.2}",
        par.run.parallel_speedup()
    );
    assert!(
        par.run.max_crit_work_units < seq.run.max_crit_work_units,
        "critical path must shrink with threads"
    );
}

#[test]
fn chaos_run_with_threads_stays_bit_identical() {
    // Spot-check the full stack: a 4-thread run over a lossy network with
    // go-back-N reliability must still converge to the clean single-thread
    // results.
    let g = matrix_graph(Algorithm::Bfs);
    let cfg = DistConfig::new(HOSTS);
    let clean = launch(&g, Algorithm::Bfs, &cfg, 1);
    let counters = FaultCounters::new();
    let chaotic = Run::new(&g, Algorithm::Bfs)
        .config(&cfg)
        .threads(4)
        .transport(|ep| {
            ReliableTransport::over(FaultyTransport::new(
                ep,
                FaultPlan::lossy(7),
                counters.clone(),
            ))
        })
        .launch();
    assert!(counters.total() > 0, "the fault plan injected nothing");
    assert_eq!(chaotic.rounds, clean.rounds, "chaos changed round count");
    assert_eq!(
        chaotic.int_labels, clean.int_labels,
        "chaos + threads changed results"
    );
}
