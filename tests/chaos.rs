//! Chaos suite: every benchmark runs over a reliable-over-faulty transport
//! stack — frames dropped, duplicated, corrupted, and delayed by seeded
//! fault plans — and must produce results bit-identical to the fault-free
//! run, for every partition policy and several fault seeds. A total
//! blackout must surface as a [`NetError::PeerUnreachable`] at the sync
//! call site, never as a hang or a panic.
//!
//! Gated behind the default-on `chaos` feature so
//! `cargo test --no-default-features` can skip the (deliberately) slow
//! lossy-network matrix.

use gluon_suite::algos::driver::{self, DistOutcome};
use gluon_suite::algos::{Algorithm, DistConfig, EngineKind};
use gluon_suite::graph::{gen, max_out_degree_node, Csr};
use gluon_suite::net::{
    run_cluster_wrapped, Communicator, FaultAction, FaultCounters, FaultPlan, FaultRule,
    FaultyTransport, MemoryTransport, NetError, NetStats, ReliableTransport, RetryPolicy,
};
use gluon_suite::partition::{partition_on_host, Policy};
use gluon_suite::substrate::{GluonContext, OptLevel};
use std::time::{Duration, Instant};

const HOSTS: usize = 3;
const SEEDS: [u64; 3] = [11, 1213, 987_654_321];
const POLICIES: [Policy; 3] = [Policy::Oec, Policy::Iec, Policy::Cvc];

/// The transport stack under test: go-back-N reliability over a seeded
/// fault injector over the in-memory wire.
type Stack = ReliableTransport<FaultyTransport<MemoryTransport>>;

type Wrap = Box<dyn Fn(MemoryTransport) -> Stack + Send + Sync>;

fn chaos_wrap(seed: u64, counters: &FaultCounters) -> Wrap {
    let counters = counters.clone();
    Box::new(move |ep| {
        ReliableTransport::over(FaultyTransport::new(
            ep,
            FaultPlan::lossy(seed),
            counters.clone(),
        ))
    })
}

/// Runs `chaotic` against `clean` for every policy × seed and insists on
/// bit-identical labels, ranks, and round counts, with provably injected
/// faults (the counters must show traffic was actually mangled).
fn check_chaos_matrix(
    name: &str,
    clean: impl Fn(&DistConfig) -> DistOutcome,
    chaotic: impl Fn(&DistConfig, Wrap) -> DistOutcome,
) {
    let (mut dropped, mut corrupted) = (0u64, 0u64);
    for policy in POLICIES {
        let cfg = DistConfig {
            hosts: HOSTS,
            policy,
            opts: OptLevel::OSTI,
            engine: EngineKind::Galois,
        };
        let baseline = clean(&cfg);
        for seed in SEEDS {
            let counters = FaultCounters::new();
            let out = chaotic(&cfg, chaos_wrap(seed, &counters));
            let ctx = format!("{name} / {policy:?} / seed {seed}");
            assert!(counters.total() > 0, "{ctx}: no faults were injected");
            dropped += counters.dropped();
            corrupted += counters.corrupted();
            assert_eq!(out.rounds, baseline.rounds, "{ctx}: round count diverged");
            assert_eq!(
                out.int_labels, baseline.int_labels,
                "{ctx}: integer labels diverged"
            );
            let got: Vec<u64> = out.ranks.iter().map(|r| r.to_bits()).collect();
            let want: Vec<u64> = baseline.ranks.iter().map(|r| r.to_bits()).collect();
            assert_eq!(got, want, "{ctx}: ranks diverged (bitwise)");
        }
    }
    assert!(dropped > 0, "{name}: the matrix never dropped a frame");
    assert!(corrupted > 0, "{name}: the matrix never corrupted a frame");
}

fn chaos_graph() -> Csr {
    gen::rmat(7, 8, Default::default(), 42)
}

#[test]
fn bfs_is_bit_identical_under_chaos() {
    let g = chaos_graph();
    let src = max_out_degree_node(&g);
    check_chaos_matrix(
        "bfs",
        |cfg| driver::Run::new(&g, Algorithm::Bfs).config(cfg).launch(),
        |cfg, wrap| {
            driver::Run::new(&g, Algorithm::Bfs)
                .config(cfg)
                .source(src)
                .pagerank(Default::default())
                .transport(wrap)
                .launch()
        },
    );
}

#[test]
fn sssp_is_bit_identical_under_chaos() {
    let g = gen::with_random_weights(&chaos_graph(), 50, 9);
    let src = max_out_degree_node(&g);
    check_chaos_matrix(
        "sssp",
        |cfg| driver::Run::new(&g, Algorithm::Sssp).config(cfg).launch(),
        |cfg, wrap| {
            driver::Run::new(&g, Algorithm::Sssp)
                .config(cfg)
                .source(src)
                .pagerank(Default::default())
                .transport(wrap)
                .launch()
        },
    );
}

#[test]
fn cc_is_bit_identical_under_chaos() {
    let g = chaos_graph();
    check_chaos_matrix(
        "cc",
        |cfg| driver::Run::new(&g, Algorithm::Cc).config(cfg).launch(),
        |cfg, wrap| {
            driver::Run::new(&g, Algorithm::Cc)
                .config(cfg)
                .transport(wrap)
                .launch()
        },
    );
}

#[test]
fn pagerank_is_bit_identical_under_chaos() {
    let g = chaos_graph();
    check_chaos_matrix(
        "pagerank",
        |cfg| {
            driver::Run::new(&g, Algorithm::Pagerank)
                .config(cfg)
                .launch()
        },
        |cfg, wrap| {
            driver::Run::new(&g, Algorithm::Pagerank)
                .config(cfg)
                .transport(wrap)
                .launch()
        },
    );
}

#[test]
fn kcore_is_bit_identical_under_chaos() {
    let g = chaos_graph();
    check_chaos_matrix(
        "kcore",
        |cfg| driver::Run::kcore(&g, 3).config(cfg).launch(),
        |cfg, wrap| {
            driver::Run::kcore(&g, 3)
                .config(cfg)
                .transport(wrap)
                .launch()
        },
    );
}

#[test]
fn betweenness_is_bit_identical_under_chaos() {
    let g = chaos_graph();
    let src = max_out_degree_node(&g);
    check_chaos_matrix(
        "bc",
        |cfg| driver::Run::betweenness(&g, src).config(cfg).launch(),
        |cfg, wrap| {
            driver::Run::betweenness(&g, src)
                .config(cfg)
                .transport(wrap)
                .launch()
        },
    );
}

/// A policy tuned so a dead peer is detected in milliseconds, not the
/// production-grade seconds.
fn fail_fast() -> RetryPolicy {
    RetryPolicy {
        initial_rto: Duration::from_micros(200),
        backoff: 2,
        max_rto: Duration::from_millis(2),
        max_retries: 4,
        window: 8,
        recv_budget: Duration::from_millis(400),
    }
}

/// 100% drop: after a fault-free warm-up, every frame on the wire
/// vanishes. Every host must come back with `PeerUnreachable` blaming the
/// other side — quickly, with no hang and no panic.
#[test]
fn total_blackout_is_a_clean_error_at_the_collective() {
    let started = Instant::now();
    let (results, _) = run_cluster_wrapped(
        2,
        NetStats::new(2),
        |ep| {
            let faulty = FaultyTransport::new(
                ep,
                FaultPlan::none(7).with_rule(FaultRule::always(FaultAction::Drop)),
                FaultCounters::new(),
            );
            faulty.disarm(); // let the warm-up through
            ReliableTransport::with_policy(faulty, fail_fast())
        },
        |net| {
            let comm = Communicator::new(net);
            comm.try_barrier().expect("disarmed warm-up barrier");
            net.inner().arm();
            comm.try_all_reduce_u64(1, u64::wrapping_add)
        },
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "blackout detection must fail fast, took {:?}",
        started.elapsed()
    );
    for (rank, res) in results.iter().enumerate() {
        match res {
            Ok(v) => panic!("host {rank} all-reduced {v} through a dead wire"),
            Err(e @ NetError::PeerUnreachable { peer, .. }) => {
                assert_eq!(*peer, 1 - rank, "host {rank} blamed the wrong peer");
                assert_eq!(e.peer(), 1 - rank);
                assert!(e.to_string().contains("unreachable"), "unhelpful: {e}");
            }
        }
    }
    // Once a peer is declared dead, later operations fail immediately.
}

/// The same blackout surfacing through the substrate: partitioning runs
/// fault-free, then the wire dies, and the next sync call site returns the
/// error instead of hanging the BSP round.
#[test]
fn total_blackout_is_a_clean_error_at_the_sync_call_site() {
    let g = gen::rmat(6, 6, Default::default(), 5);
    let started = Instant::now();
    let (results, _) = run_cluster_wrapped(
        HOSTS,
        NetStats::new(HOSTS),
        |ep| {
            let faulty = FaultyTransport::new(
                ep,
                FaultPlan::none(13).with_rule(FaultRule::always(FaultAction::Drop)),
                FaultCounters::new(),
            );
            faulty.disarm();
            ReliableTransport::with_policy(faulty, fail_fast())
        },
        |net| {
            let comm = Communicator::new(net);
            let lg = partition_on_host(&g, Policy::Cvc, &comm);
            // Partitioning and the memoization handshake inside
            // GluonContext::new still run on a healthy wire.
            let mut ctx = GluonContext::new(&lg, &comm, OptLevel::OSTI);
            comm.try_barrier().expect("disarmed warm-up barrier");
            net.inner().arm();
            ctx.try_any_globally(comm.rank() == 0)
        },
    );
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "sync-site blackout detection took {:?}",
        started.elapsed()
    );
    for (rank, res) in results.iter().enumerate() {
        let err = res
            .as_ref()
            .expect_err("a sync over a dead wire must not succeed");
        let NetError::PeerUnreachable { peer, .. } = err;
        assert!(*peer < HOSTS, "host {rank} blamed nonexistent host {peer}");
        assert_ne!(*peer, rank, "host {rank} blamed itself");
    }
}

/// Reordering without loss: a delay-and-duplicate-heavy plan (no drops,
/// no corruption) stresses sequence-number reassembly and duplicate
/// suppression specifically, on the algorithm with the most sync phases.
#[test]
fn heavy_reordering_alone_is_also_bit_identical() {
    let g = gen::rmat(6, 6, Default::default(), 5);
    let cfg = DistConfig {
        hosts: HOSTS,
        policy: Policy::Cvc,
        opts: OptLevel::OSTI,
        engine: EngineKind::Galois,
    };
    let baseline = driver::Run::new(&g, Algorithm::Pagerank)
        .config(&cfg)
        .launch();
    for seed in SEEDS {
        let counters = FaultCounters::new();
        let out = driver::Run::new(&g, Algorithm::Pagerank)
            .config(&cfg)
            .transport(|ep| {
                ReliableTransport::over(FaultyTransport::new(
                    ep,
                    FaultPlan::none(seed)
                        .with_delay_rate(0.3)
                        .with_duplicate_rate(0.1),
                    counters.clone(),
                ))
            })
            .launch();
        assert!(counters.delayed() > 0, "seed {seed}: nothing was reordered");
        assert!(
            counters.duplicated() > 0,
            "seed {seed}: nothing was duplicated"
        );
        let got: Vec<u64> = out.ranks.iter().map(|r| r.to_bits()).collect();
        let want: Vec<u64> = baseline.ranks.iter().map(|r| r.to_bits()).collect();
        assert_eq!(got, want, "seed {seed}: ranks diverged under reordering");
        // The reliability layer had real work to do: either a duplicate was
        // suppressed or a gap was repaired (out.net counters are cluster-wide).
        assert!(
            out.net.dup_suppressed + out.net.retransmit_messages > 0,
            "seed {seed}: reliability layer saw no anomalies"
        );
    }
}
