//! Chaos suite: every benchmark runs over a reliable-over-faulty transport
//! stack — frames dropped, duplicated, corrupted, and delayed by seeded
//! fault plans — and must produce results bit-identical to the fault-free
//! run, for every partition policy and several fault seeds. A total
//! blackout must surface as a [`NetError::PeerUnreachable`] at the sync
//! call site, never as a hang or a panic.
//!
//! Gated behind the default-on `chaos` feature so
//! `cargo test --no-default-features` can skip the (deliberately) slow
//! lossy-network matrix.

use gluon_suite::algos::driver::{self, DistOutcome};
use gluon_suite::algos::{Algorithm, DistConfig, EngineKind};
use gluon_suite::graph::{gen, max_out_degree_node, Csr};
use gluon_suite::net::{
    run_cluster_wrapped, Communicator, FaultAction, FaultCounters, FaultPlan, FaultRule,
    FaultyTransport, MemoryTransport, NetError, NetStats, ReliableTransport, RetryPolicy,
};
use gluon_suite::partition::{partition_on_host, Policy};
use gluon_suite::substrate::{
    DenseBitset, GluonContext, MinField, OptLevel, SyncError, SyncSpec, WriteLocation,
};
use gluon_suite::trace::Tracer;
use std::time::{Duration, Instant};

const HOSTS: usize = 3;
const SEEDS: [u64; 3] = [11, 1213, 987_654_321];
const POLICIES: [Policy; 3] = [Policy::Oec, Policy::Iec, Policy::Cvc];

/// The transport stack under test: go-back-N reliability over a seeded
/// fault injector over the in-memory wire.
type Stack = ReliableTransport<FaultyTransport<MemoryTransport>>;

type Wrap = Box<dyn Fn(MemoryTransport) -> Stack + Send + Sync>;

fn chaos_wrap(seed: u64, counters: &FaultCounters) -> Wrap {
    let counters = counters.clone();
    Box::new(move |ep| {
        ReliableTransport::over(FaultyTransport::new(
            ep,
            FaultPlan::lossy(seed),
            counters.clone(),
        ))
    })
}

/// Runs `chaotic` against `clean` for every policy × seed and insists on
/// bit-identical labels, ranks, and round counts, with provably injected
/// faults (the counters must show traffic was actually mangled).
fn check_chaos_matrix(
    name: &str,
    clean: impl Fn(&DistConfig) -> DistOutcome,
    chaotic: impl Fn(&DistConfig, Wrap) -> DistOutcome,
) {
    let (mut dropped, mut corrupted) = (0u64, 0u64);
    for policy in POLICIES {
        let cfg = DistConfig {
            hosts: HOSTS,
            policy,
            opts: OptLevel::OSTI,
            engine: EngineKind::Galois,
        };
        let baseline = clean(&cfg);
        for seed in SEEDS {
            let counters = FaultCounters::new();
            let out = chaotic(&cfg, chaos_wrap(seed, &counters));
            let ctx = format!("{name} / {policy:?} / seed {seed}");
            assert!(counters.total() > 0, "{ctx}: no faults were injected");
            dropped += counters.dropped();
            corrupted += counters.corrupted();
            assert_eq!(out.rounds, baseline.rounds, "{ctx}: round count diverged");
            assert_eq!(
                out.int_labels, baseline.int_labels,
                "{ctx}: integer labels diverged"
            );
            let got: Vec<u64> = out.ranks.iter().map(|r| r.to_bits()).collect();
            let want: Vec<u64> = baseline.ranks.iter().map(|r| r.to_bits()).collect();
            assert_eq!(got, want, "{ctx}: ranks diverged (bitwise)");
        }
    }
    assert!(dropped > 0, "{name}: the matrix never dropped a frame");
    assert!(corrupted > 0, "{name}: the matrix never corrupted a frame");
}

fn chaos_graph() -> Csr {
    gen::rmat(7, 8, Default::default(), 42)
}

#[test]
fn bfs_is_bit_identical_under_chaos() {
    let g = chaos_graph();
    let src = max_out_degree_node(&g);
    check_chaos_matrix(
        "bfs",
        |cfg| driver::Run::new(&g, Algorithm::Bfs).config(cfg).launch(),
        |cfg, wrap| {
            driver::Run::new(&g, Algorithm::Bfs)
                .config(cfg)
                .source(src)
                .pagerank(Default::default())
                .transport(wrap)
                .launch()
        },
    );
}

#[test]
fn sssp_is_bit_identical_under_chaos() {
    let g = gen::with_random_weights(&chaos_graph(), 50, 9);
    let src = max_out_degree_node(&g);
    check_chaos_matrix(
        "sssp",
        |cfg| driver::Run::new(&g, Algorithm::Sssp).config(cfg).launch(),
        |cfg, wrap| {
            driver::Run::new(&g, Algorithm::Sssp)
                .config(cfg)
                .source(src)
                .pagerank(Default::default())
                .transport(wrap)
                .launch()
        },
    );
}

#[test]
fn cc_is_bit_identical_under_chaos() {
    let g = chaos_graph();
    check_chaos_matrix(
        "cc",
        |cfg| driver::Run::new(&g, Algorithm::Cc).config(cfg).launch(),
        |cfg, wrap| {
            driver::Run::new(&g, Algorithm::Cc)
                .config(cfg)
                .transport(wrap)
                .launch()
        },
    );
}

#[test]
fn pagerank_is_bit_identical_under_chaos() {
    let g = chaos_graph();
    check_chaos_matrix(
        "pagerank",
        |cfg| {
            driver::Run::new(&g, Algorithm::Pagerank)
                .config(cfg)
                .launch()
        },
        |cfg, wrap| {
            driver::Run::new(&g, Algorithm::Pagerank)
                .config(cfg)
                .transport(wrap)
                .launch()
        },
    );
}

#[test]
fn kcore_is_bit_identical_under_chaos() {
    let g = chaos_graph();
    check_chaos_matrix(
        "kcore",
        |cfg| driver::Run::kcore(&g, 3).config(cfg).launch(),
        |cfg, wrap| {
            driver::Run::kcore(&g, 3)
                .config(cfg)
                .transport(wrap)
                .launch()
        },
    );
}

#[test]
fn betweenness_is_bit_identical_under_chaos() {
    let g = chaos_graph();
    let src = max_out_degree_node(&g);
    check_chaos_matrix(
        "bc",
        |cfg| driver::Run::betweenness(&g, src).config(cfg).launch(),
        |cfg, wrap| {
            driver::Run::betweenness(&g, src)
                .config(cfg)
                .transport(wrap)
                .launch()
        },
    );
}

/// A policy tuned so a dead peer is detected in milliseconds, not the
/// production-grade seconds.
fn fail_fast() -> RetryPolicy {
    RetryPolicy {
        initial_rto: Duration::from_micros(200),
        backoff: 2,
        max_rto: Duration::from_millis(2),
        max_retries: 4,
        window: 8,
        recv_budget: Duration::from_millis(400),
    }
}

/// 100% drop: after a fault-free warm-up, every frame on the wire
/// vanishes. Every host must come back with `PeerUnreachable` blaming the
/// other side — quickly, with no hang and no panic.
#[test]
fn total_blackout_is_a_clean_error_at_the_collective() {
    let started = Instant::now();
    let (results, _) = run_cluster_wrapped(
        2,
        NetStats::new(2),
        |ep| {
            let faulty = FaultyTransport::new(
                ep,
                FaultPlan::none(7).with_rule(FaultRule::always(FaultAction::Drop)),
                FaultCounters::new(),
            );
            faulty.disarm(); // let the warm-up through
            ReliableTransport::with_policy(faulty, fail_fast())
        },
        |net| {
            let comm = Communicator::new(net);
            comm.try_barrier().expect("disarmed warm-up barrier");
            net.inner().arm();
            comm.try_all_reduce_u64(1, u64::wrapping_add)
        },
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "blackout detection must fail fast, took {:?}",
        started.elapsed()
    );
    for (rank, res) in results.iter().enumerate() {
        match res {
            Ok(v) => panic!("host {rank} all-reduced {v} through a dead wire"),
            Err(e @ NetError::PeerUnreachable { peer, .. }) => {
                assert_eq!(*peer, 1 - rank, "host {rank} blamed the wrong peer");
                assert_eq!(e.peer(), Some(1 - rank));
                assert!(e.to_string().contains("unreachable"), "unhelpful: {e}");
            }
            Err(other) => panic!("host {rank} got {other} instead of PeerUnreachable"),
        }
    }
    // Once a peer is declared dead, later operations fail immediately.
}

/// The same blackout surfacing through the substrate: partitioning runs
/// fault-free, then the wire dies, and the next sync call site returns the
/// error instead of hanging the BSP round.
#[test]
fn total_blackout_is_a_clean_error_at_the_sync_call_site() {
    let g = gen::rmat(6, 6, Default::default(), 5);
    let started = Instant::now();
    let (results, _) = run_cluster_wrapped(
        HOSTS,
        NetStats::new(HOSTS),
        |ep| {
            let faulty = FaultyTransport::new(
                ep,
                FaultPlan::none(13).with_rule(FaultRule::always(FaultAction::Drop)),
                FaultCounters::new(),
            );
            faulty.disarm();
            ReliableTransport::with_policy(faulty, fail_fast())
        },
        |net| {
            let comm = Communicator::new(net);
            let lg = partition_on_host(&g, Policy::Cvc, &comm);
            // Partitioning and the memoization handshake inside
            // GluonContext::new still run on a healthy wire.
            let mut ctx = GluonContext::new(&lg, &comm, OptLevel::OSTI);
            comm.try_barrier().expect("disarmed warm-up barrier");
            net.inner().arm();
            ctx.try_any_globally(comm.rank() == 0)
        },
    );
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "sync-site blackout detection took {:?}",
        started.elapsed()
    );
    for (rank, res) in results.iter().enumerate() {
        let err = res
            .as_ref()
            .expect_err("a sync over a dead wire must not succeed");
        let NetError::PeerUnreachable { peer, .. } = err else {
            panic!("host {rank} got {err} instead of PeerUnreachable");
        };
        assert!(*peer < HOSTS, "host {rank} blamed nonexistent host {peer}");
        assert_ne!(*peer, rank, "host {rank} blamed itself");
    }
}

/// Reordering without loss: a delay-and-duplicate-heavy plan (no drops,
/// no corruption) stresses sequence-number reassembly and duplicate
/// suppression specifically, on the algorithm with the most sync phases.
#[test]
fn heavy_reordering_alone_is_also_bit_identical() {
    let g = gen::rmat(6, 6, Default::default(), 5);
    let cfg = DistConfig {
        hosts: HOSTS,
        policy: Policy::Cvc,
        opts: OptLevel::OSTI,
        engine: EngineKind::Galois,
    };
    let baseline = driver::Run::new(&g, Algorithm::Pagerank)
        .config(&cfg)
        .launch();
    for seed in SEEDS {
        let counters = FaultCounters::new();
        let out = driver::Run::new(&g, Algorithm::Pagerank)
            .config(&cfg)
            .transport(|ep| {
                ReliableTransport::over(FaultyTransport::new(
                    ep,
                    FaultPlan::none(seed)
                        .with_delay_rate(0.3)
                        .with_duplicate_rate(0.1),
                    counters.clone(),
                ))
            })
            .launch();
        assert!(counters.delayed() > 0, "seed {seed}: nothing was reordered");
        assert!(
            counters.duplicated() > 0,
            "seed {seed}: nothing was duplicated"
        );
        let got: Vec<u64> = out.ranks.iter().map(|r| r.to_bits()).collect();
        let want: Vec<u64> = baseline.ranks.iter().map(|r| r.to_bits()).collect();
        assert_eq!(got, want, "seed {seed}: ranks diverged under reordering");
        // The reliability layer had real work to do: either a duplicate was
        // suppressed or a gap was repaired (out.net counters are cluster-wide).
        assert!(
            out.net.dup_suppressed + out.net.retransmit_messages > 0,
            "seed {seed}: reliability layer saw no anomalies"
        );
    }
}

/// Corruption *past* the CRC: the reliability layer normally drops a
/// mangled frame before the codec ever sees it, so this test runs a bare
/// `FaultyTransport` (no reliability wrapper) that flips one bit in every
/// armed frame. Mangled sync payloads reach the decoder itself;
/// `try_sync` must surface them as [`SyncError::Decode`] — never a panic,
/// never a hang — and every incident must be counted identically by the
/// context stats, the transport's `NetStats`, and the tracer.
#[test]
fn corrupted_frames_surface_as_decode_errors_not_panics() {
    const ROUNDS: u32 = 12;
    let g = gen::rmat(6, 6, Default::default(), 5);
    let mut total_decode_errors = 0u64;
    for seed in SEEDS {
        let tracer = Tracer::new(2);
        let counters = FaultCounters::new();
        let (results, net_stats) = run_cluster_wrapped(
            2,
            NetStats::new(2),
            |ep| {
                let faulty = FaultyTransport::new(
                    ep,
                    FaultPlan::none(seed).with_corrupt_rate(1.0),
                    counters.clone(),
                );
                // Partitioning and the memoization handshake run clean;
                // only the sync payloads below get mangled.
                faulty.disarm();
                faulty
            },
            |net| {
                let comm = Communicator::with_tracer(net, tracer.clone());
                let lg = partition_on_host(&g, Policy::Cvc, &comm);
                let mut ctx = GluonContext::new(&lg, &comm, OptLevel::OSTI);
                comm.try_barrier().expect("disarmed warm-up barrier");
                net.arm();
                let n = lg.num_proxies();
                let mut vals = vec![u32::MAX; n as usize];
                // Reduce-only with no collectives while armed: both hosts
                // run the same fixed round count in lock-step whatever
                // errors occur, so nothing can deadlock.
                let spec = SyncSpec::reduce(WriteLocation::Any).named("chaos");
                let mut sync_errors = 0u64;
                for round in 0..ROUNDS {
                    let mut bits = DenseBitset::new(n);
                    for h in 0..2 {
                        for m in lg.mirrors_on(h) {
                            // All-equal values steer the encoder into the
                            // Same* modes, whose payloads are nearly all
                            // metadata — so the injected bit flips mostly
                            // land where the validators can see them.
                            vals[m.index()] = round * 31;
                            bits.set(m);
                        }
                    }
                    let mut field = MinField::new(&mut vals);
                    match ctx.try_sync(&spec, &mut field, &mut bits) {
                        Ok(()) => {}
                        Err(SyncError::Decode { peer, error }) => {
                            assert_eq!(peer, 1 - comm.rank(), "blamed the wrong peer");
                            // Every error renders without panicking.
                            let _ = error.to_string();
                            sync_errors += 1;
                        }
                        Err(SyncError::Net(e)) => {
                            panic!("bare transport cannot fail, got {e}")
                        }
                    }
                }
                (ctx.stats().decode_errors, sync_errors)
            },
        );
        assert!(
            counters.corrupted() > 0,
            "seed {seed}: nothing was corrupted"
        );
        let counted: u64 = results.iter().map(|&(c, _)| c).sum();
        let surfaced: u64 = results.iter().map(|&(_, s)| s).sum();
        assert_eq!(
            counted, surfaced,
            "seed {seed}: SyncStats decode_errors diverges from surfaced errors"
        );
        assert_eq!(
            net_stats.decode_errors(),
            counted,
            "seed {seed}: NetStats decode_errors diverges from SyncStats"
        );
        assert_eq!(
            tracer.decode_error_events(),
            counted,
            "seed {seed}: tracer decode_error events diverge from SyncStats"
        );
        total_decode_errors += counted;
    }
    // One flipped bit per frame lands in decoded-as-garbage values some of
    // the time, but across all seeds and rounds the validators must have
    // caught real corruption.
    assert!(
        total_decode_errors > 0,
        "no corrupted frame was ever rejected by the decoder"
    );
}
