//! Pseudo-fuzz battery for the fallible decoder: truncations, bit flips
//! (through the fault injector's own corruptor), and raw garbage. The
//! single property under test is the error-handling contract from
//! DESIGN.md — `decode_memoized` / `decode_gid_values` are *total* over
//! arbitrary bytes: every input either decodes or returns a
//! [`DecodeError`]; nothing panics, whatever the bytes.
//!
//! Seeds are fixed so the corpus is identical on every run; the verify
//! script runs this battery in release mode as the codec smoke test.

use bytes::Bytes;
use gluon_suite::graph::Gid;
use gluon_suite::net::{FaultCounters, FaultPlan, FaultyTransport, MemoryTransport, Transport};
use gluon_suite::substrate::encode::{
    decode_gid_values, decode_memoized, encode_gid_values, encode_memoized, encode_memoized_as,
    WireMode,
};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Decoding must return *something* — Ok or Err — for both entry points.
/// Reaching the end of this function is the assertion; any panic fails
/// the test.
fn must_not_panic(payload: &[u8], list_len: usize) {
    let mut sink = 0u64;
    let _ = decode_memoized::<u32>(payload, list_len, &mut |p, v: u32| {
        sink = sink.wrapping_add(p as u64 ^ u64::from(v));
    });
    let _ = decode_memoized::<u64>(payload, list_len, &mut |p, v: u64| {
        sink = sink.wrapping_add(p as u64 ^ v);
    });
    let _ = decode_gid_values::<u32>(payload, &mut |g, v| {
        sink = sink.wrapping_add(u64::from(g.0) ^ u64::from(v));
    });
    std::hint::black_box(sink);
}

/// A spread of valid payloads across every wire mode and both value
/// widths, to be mangled by the tests below.
fn seed_payloads(rng: &mut Rng) -> Vec<(Bytes, usize)> {
    let mut out = Vec::new();
    for _ in 0..40 {
        let list_len = 1 + rng.below(2_000) as usize;
        let k = 1 + rng.below(list_len as u64) as usize;
        let mut updated: Vec<u32> = (0..k).map(|_| rng.below(list_len as u64) as u32).collect();
        updated.sort_unstable();
        updated.dedup();
        let same = rng.below(2) == 0;
        let msg = encode_memoized(list_len, &updated, |p| {
            if same {
                7u32
            } else {
                p as u32 ^ 0xA5A5
            }
        });
        out.push((msg, list_len));
        // Also force the modes the adaptive selector skipped for this set.
        for mode in [
            WireMode::Dense,
            WireMode::Bitvec,
            WireMode::Indices,
            WireMode::IndicesDelta,
            WireMode::RunLength,
            WireMode::SameIndicesDelta,
            WireMode::SameRunLength,
        ] {
            if let Some(msg) = encode_memoized_as(mode, list_len, &updated, |p| {
                if same {
                    7u32
                } else {
                    p as u32 ^ 0xA5A5
                }
            }) {
                out.push((msg, list_len));
            }
        }
    }
    let pairs: Vec<(Gid, u64)> = (0..33).map(|i| (Gid(i * 3), u64::from(i) << 17)).collect();
    out.push((encode_gid_values(&pairs), 100));
    out
}

#[test]
fn every_truncation_of_every_mode_decodes_or_errors() {
    let mut rng = Rng(0xC0DE_C0DE);
    for (msg, list_len) in seed_payloads(&mut rng) {
        // Every cut for short payloads; an even sample plus the tail for
        // long ones (keeps the debug-mode run fast without losing the
        // interesting boundaries).
        let cuts: Vec<usize> = if msg.len() <= 300 {
            (0..msg.len()).collect()
        } else {
            (0..msg.len())
                .step_by(msg.len() / 300 + 1)
                .chain(msg.len() - 16..msg.len())
                .collect()
        };
        for cut in cuts {
            must_not_panic(&msg[..cut], list_len);
            // A strict prefix of a valid payload is never itself valid:
            // every layout either carries an explicit count or is
            // length-checked against the agreed list.
            if WireMode::try_of(&msg) != Ok(WireMode::GidValues) {
                assert!(
                    decode_memoized::<u32>(&msg[..cut], list_len, &mut |_, _| {}).is_err()
                        || decode_memoized::<u64>(&msg[..cut], list_len, &mut |_, _| {}).is_err(),
                    "strict prefix of len {cut}/{} accepted (mode {:?})",
                    msg.len(),
                    WireMode::try_of(&msg)
                );
            }
        }
    }
}

#[test]
fn bit_flips_through_the_fault_injector_never_panic_the_decoder() {
    // The same corruptor the chaos suite uses: a FaultyTransport with a
    // 100% corrupt rate flips exactly one payload bit per send. Ship each
    // seed payload through it repeatedly and decode whatever arrives.
    let mut rng = Rng(0xB17_F11B5);
    let seeds = seed_payloads(&mut rng);
    let mut eps = MemoryTransport::cluster(2);
    let rx = eps.pop().expect("endpoint 1");
    let tx = FaultyTransport::new(
        eps.pop().expect("endpoint 0"),
        FaultPlan::none(0xF00D).with_corrupt_rate(1.0),
        FaultCounters::new(),
    );
    let mut corrupted = 0u64;
    for round in 0..8 {
        for (i, (msg, list_len)) in seeds.iter().enumerate() {
            let tag = (round * seeds.len() + i) as u32;
            tx.try_send(1, tag, msg.clone()).unwrap();
            let mangled = rx.try_recv(0, tag).unwrap();
            if mangled != *msg {
                corrupted += 1;
            }
            must_not_panic(&mangled, *list_len);
        }
    }
    assert!(
        corrupted > 0,
        "the fault injector never actually flipped a bit"
    );
}

#[test]
fn multi_bit_flips_never_panic_the_decoder() {
    let mut rng = Rng(0x5EED_5EED);
    for (msg, list_len) in seed_payloads(&mut rng) {
        for _ in 0..24 {
            let mut bytes = msg.to_vec();
            for _ in 0..1 + rng.below(4) {
                let bit = rng.below((bytes.len() * 8) as u64) as usize;
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            must_not_panic(&bytes, list_len);
        }
    }
}

#[test]
fn random_garbage_never_panics_the_decoder() {
    let mut rng = Rng(0x6A5B_A6E5);
    for _ in 0..4_000 {
        let len = rng.below(200) as usize;
        let mut bytes = vec![0u8; len];
        for b in &mut bytes {
            *b = rng.next() as u8;
        }
        // Bias the mode byte toward valid modes half the time so the
        // per-mode validators get exercised, not just UnknownMode.
        if !bytes.is_empty() && rng.below(2) == 0 {
            bytes[0] = rng.below(9) as u8;
        }
        let list_len = rng.below(4_096) as usize;
        must_not_panic(&bytes, list_len);
    }
}

#[test]
fn decoders_reject_the_empty_payload_with_truncated() {
    use gluon_suite::substrate::encode::DecodeError;
    assert_eq!(
        decode_memoized::<u32>(&[], 10, &mut |_, _| {}),
        Err(DecodeError::Truncated)
    );
    assert_eq!(
        decode_gid_values::<u32>(&[], &mut |_, _| {}),
        Err(DecodeError::Truncated)
    );
}
