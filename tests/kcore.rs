//! Distributed k-core against the peeling oracle, across engines, policies
//! and k values.

use gluon_suite::algos::{driver, reference, DistConfig, EngineKind};
use gluon_suite::graph::{gen, Csr};
use gluon_suite::partition::Policy;
use gluon_suite::substrate::OptLevel;

fn check_kcore(graph: &Csr, k: u32, cfg: &DistConfig) {
    let out = driver::Run::kcore(graph, k).config(cfg).launch();
    let core = reference::kcore(graph);
    for (v, (&alive, &core_num)) in out.int_labels.iter().zip(&core).enumerate() {
        let expect = u32::from(core_num >= k);
        assert_eq!(alive, expect, "node {v} (core {core_num}, k {k}) {cfg:?}");
    }
}

#[test]
fn kcore_matches_oracle_on_rmat() {
    let g = gen::rmat(8, 8, Default::default(), 61);
    for k in [1, 2, 4, 8, 16] {
        check_kcore(&g, k, &DistConfig::new(4));
    }
}

#[test]
fn kcore_across_engines_and_policies() {
    let g = gen::twitter_like(1_500, 10, 62);
    for engine in EngineKind::ALL {
        for policy in [Policy::Oec, Policy::Cvc, Policy::Hvc] {
            check_kcore(
                &g,
                3,
                &DistConfig {
                    hosts: 3,
                    policy,
                    opts: OptLevel::OSTI,
                    engine,
                },
            );
        }
    }
}

#[test]
fn kcore_across_opt_levels() {
    let g = gen::rmat(7, 6, Default::default(), 63);
    for opts in OptLevel::ALL {
        check_kcore(
            &g,
            2,
            &DistConfig {
                hosts: 4,
                policy: Policy::Cvc,
                opts,
                engine: EngineKind::Galois,
            },
        );
    }
}

#[test]
fn kcore_extremes() {
    let g = gen::complete(8);
    // Complete graph on 8 nodes: everyone has undirected degree 7.
    let all = driver::Run::kcore(&g, 7)
        .config(&DistConfig::new(2))
        .launch();
    assert!(all.int_labels.iter().all(|&a| a == 1));
    let none = driver::Run::kcore(&g, 8)
        .config(&DistConfig::new(2))
        .launch();
    assert!(none.int_labels.iter().all(|&a| a == 0));
    // k = 0 keeps everything, including isolated nodes.
    let iso = Csr::empty(5);
    let keep = driver::Run::kcore(&iso, 0)
        .config(&DistConfig::new(2))
        .launch();
    assert!(keep.int_labels.iter().all(|&a| a == 1));
}
