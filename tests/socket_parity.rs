//! Socket-backend parity: the paper's substrate must behave identically
//! whether hosts exchange payloads through in-memory channels or real
//! sockets. These tests assert the strict contract from DESIGN.md's
//! "Transport backends" section — labels, payload byte/message/round
//! counters, and report fingerprints are bit-identical across backends —
//! for both in-process socket meshes ([`Run::transport_sockets`]) and
//! genuinely separate worker processes ([`spawn_local_cluster`] driving
//! the `gluon-host` binary), plus the typed failure behavior when a
//! worker process dies mid-run.

use gluon_algos::launcher::{spawn_local_cluster, ClusterSpec, LaunchError};
use gluon_algos::{Algorithm, Run};
use gluon_graph::gen;
use gluon_metrics::MetricsHub;
use gluon_net::{CostModel, NetError, NetStats, SocketFactory, SocketKind, Transport};
use gluon_partition::Policy;
use std::time::Duration;

/// The worker binary built alongside this test suite.
fn host_bin() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_BIN_EXE_gluon-host"))
}

/// Asserts the payload-level equivalence contract between two outcomes:
/// identical labels (bit-for-bit for f64 ranks), identical round counts,
/// and identical per-host-pair payload traffic.
fn assert_outcomes_match(
    memory: &gluon_algos::DistOutcome,
    socket: &gluon_algos::DistOutcome,
    what: &str,
) {
    assert_eq!(memory.int_labels, socket.int_labels, "{what}: int labels");
    assert_eq!(
        memory.ranks.len(),
        socket.ranks.len(),
        "{what}: rank vector length"
    );
    for (i, (a, b)) in memory.ranks.iter().zip(&socket.ranks).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: rank of node {i} must match bit-for-bit"
        );
    }
    assert_eq!(memory.rounds, socket.rounds, "{what}: rounds");
    assert_eq!(memory.net.bytes, socket.net.bytes, "{what}: payload bytes");
    assert_eq!(
        memory.net.messages, socket.net.messages,
        "{what}: payload messages"
    );
    assert_eq!(
        memory.run.total_bytes, socket.run.total_bytes,
        "{what}: aggregated sync bytes"
    );
}

#[test]
fn bfs_socket_parity_across_policies_and_families() {
    let g = gen::rmat(7, 6, Default::default(), 11);
    for policy in [Policy::Oec, Policy::Cvc] {
        let memory = Run::new(&g, Algorithm::Bfs)
            .hosts(3)
            .policy(policy)
            .launch();
        for kind in [SocketKind::Tcp, SocketKind::Unix] {
            let socket = Run::new(&g, Algorithm::Bfs)
                .hosts(3)
                .policy(policy)
                .transport_sockets(kind)
                .launch();
            assert_outcomes_match(&memory, &socket, &format!("bfs {policy:?} {kind:?}"));
        }
    }
}

#[test]
fn pagerank_socket_parity_across_policies_and_families() {
    let g = gen::rmat(7, 6, Default::default(), 12);
    for policy in [Policy::Oec, Policy::Cvc] {
        let memory = Run::new(&g, Algorithm::Pagerank)
            .hosts(3)
            .policy(policy)
            .launch();
        for kind in [SocketKind::Tcp, SocketKind::Unix] {
            let socket = Run::new(&g, Algorithm::Pagerank)
                .hosts(3)
                .policy(policy)
                .transport_sockets(kind)
                .launch();
            assert_outcomes_match(&memory, &socket, &format!("pr {policy:?} {kind:?}"));
        }
    }
}

#[test]
fn fingerprints_match_across_backends_in_process() {
    let g = gen::rmat(7, 6, Default::default(), 13);
    let hub_mem = MetricsHub::new(3);
    let memory = Run::new(&g, Algorithm::Bfs)
        .hosts(3)
        .metrics(&hub_mem)
        .launch();
    let hub_sock = MetricsHub::new(3);
    let socket = Run::new(&g, Algorithm::Bfs)
        .hosts(3)
        .metrics(&hub_sock)
        .transport_sockets(SocketKind::Tcp)
        .launch();
    let model = CostModel::default();
    assert_eq!(
        memory.report(&hub_mem, &model).fingerprint(),
        socket.report(&hub_sock, &model).fingerprint(),
        "socket wire mechanics must not leak into the deterministic report"
    );
}

/// Satellite: a receive that finds no matching message within the
/// deadline reports the same typed error on both backends.
#[test]
fn recv_timeout_is_typed_identically_on_both_backends() {
    const TAG: u32 = 7;
    let wait = Duration::from_millis(100);
    let memory = gluon_net::run_cluster(2, |ep| ep.try_recv_any_timeout(TAG, wait));
    for r in memory {
        assert!(matches!(r, Err(NetError::Timeout)), "memory backend");
    }
    let factory = SocketFactory::new(SocketKind::Tcp);
    let stats = NetStats::new(2);
    // Both endpoints must outlive both waits: dropping one closes the
    // connection, and the slower waiter would see EOF (`PeerDown`)
    // instead of exercising the timeout path under test.
    let teardown = std::sync::Barrier::new(2);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|rank| {
                let factory = &factory;
                let teardown = &teardown;
                let stats = stats.clone();
                s.spawn(move || {
                    let ep = factory.endpoint(rank, 2, stats, 0).expect("bootstrap");
                    let r = ep.try_recv_any_timeout(TAG, wait);
                    teardown.wait();
                    r
                })
            })
            .collect();
        for h in handles {
            let r = h.join().expect("no panic");
            assert!(matches!(r, Err(NetError::Timeout)), "socket backend");
        }
    });
}

/// The issue's acceptance bar: a 4-host pagerank where each host is a
/// separate OS process exchanging payloads over TCP produces labels,
/// counters, and a report fingerprint bit-identical to the in-memory
/// backend.
#[test]
fn process_cluster_pagerank_matches_memory_bit_for_bit() {
    let g = gen::rmat(7, 6, Default::default(), 14);
    let hub_mem = MetricsHub::new(4);
    let memory = Run::new(&g, Algorithm::Pagerank)
        .hosts(4)
        .metrics(&hub_mem)
        .launch();
    let mut spec = ClusterSpec::new(4, Algorithm::Pagerank);
    spec.host_bin = Some(host_bin());
    let cluster = spawn_local_cluster(&g, &spec).expect("4-process cluster completes");
    assert_outcomes_match(&memory, &cluster.outcome, "4-process pagerank");
    assert_eq!(cluster.outcome.recoveries, 0);
    let model = CostModel::default();
    assert_eq!(
        memory.report(&hub_mem, &model).fingerprint(),
        cluster.outcome.report(&cluster.hub, &model).fingerprint(),
        "process-cluster report must fingerprint identically to the memory backend"
    );
}

/// Unix-domain variant of the process-level parity check (bfs: the
/// launcher must also ship integer labels faithfully).
#[test]
fn process_cluster_bfs_over_unix_sockets_matches_memory() {
    let g = gen::rmat(7, 6, Default::default(), 15);
    let memory = Run::new(&g, Algorithm::Bfs).hosts(3).launch();
    let mut spec = ClusterSpec::new(3, Algorithm::Bfs);
    spec.kind = SocketKind::Unix;
    spec.host_bin = Some(host_bin());
    let cluster = spawn_local_cluster(&g, &spec).expect("3-process UDS cluster completes");
    assert_outcomes_match(&memory, &cluster.outcome, "3-process uds bfs");
}

/// A worker killed abruptly mid-run (process abort: no socket teardown,
/// no farewell) must surface to its peers as a typed peer-death error —
/// and with a checkpoint plus recovery budget, the parent relaunches and
/// the final labels match a crash-free run. Completing at all (under the
/// watchdog) proves nobody hung on the dead peer.
#[test]
fn killed_worker_recovers_to_identical_labels() {
    let g = gen::rmat(7, 6, Default::default(), 16);
    let memory = Run::new(&g, Algorithm::Bfs).hosts(3).launch();
    let mut spec = ClusterSpec::new(3, Algorithm::Bfs);
    spec.host_bin = Some(host_bin());
    spec.ckpt_every = Some(1);
    spec.max_recoveries = 1;
    spec.crash = Some((1, 2));
    let cluster = spawn_local_cluster(&g, &spec).expect("cluster recovers from the kill");
    assert_eq!(
        cluster.outcome.int_labels, memory.int_labels,
        "recovered run must match a crash-free run"
    );
    assert_eq!(cluster.outcome.recoveries, 1, "exactly one relaunch");
}

/// Without a recovery budget the same kill must yield a typed error
/// carrying the peers' evidence — not a hang, not a panic.
#[test]
fn killed_worker_without_budget_fails_with_typed_peer_death() {
    let g = gen::rmat(7, 6, Default::default(), 17);
    let mut spec = ClusterSpec::new(3, Algorithm::Bfs);
    spec.host_bin = Some(host_bin());
    spec.crash = Some((1, 2));
    match spawn_local_cluster(&g, &spec) {
        Err(LaunchError::Unrecoverable { attempts, evidence }) => {
            assert_eq!(attempts, 1);
            let joined = evidence.join("\n");
            assert!(
                joined.contains("declared down") || joined.contains("unreachable"),
                "survivors must report a typed peer failure, got: {joined}"
            );
        }
        Err(other) => panic!("expected Unrecoverable, got {other}"),
        Ok(_) => panic!("a killed worker with no recovery budget cannot succeed"),
    }
}
