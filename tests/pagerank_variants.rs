//! Push-style and pull-style pagerank converge to the same fixpoint — the
//! duality D-Ligra exposes (§5.1).

use gluon_suite::algos::apps::{pagerank, pagerank_push, PagerankConfig};
use gluon_suite::algos::{reference, EngineKind};
use gluon_suite::graph::gen;
use gluon_suite::net::{run_cluster, Communicator};
use gluon_suite::partition::{partition_on_host, Policy};
use gluon_suite::substrate::{GluonContext, OptLevel};

fn run_push(
    graph: &gluon_suite::graph::Csr,
    hosts: usize,
    policy: Policy,
    engine: EngineKind,
    cfg: PagerankConfig,
) -> Vec<f64> {
    let per_host = run_cluster(hosts, |ep| {
        let comm = Communicator::new(ep);
        let lg = partition_on_host(graph, policy, &comm);
        let mut ctx = GluonContext::new(&lg, &comm, OptLevel::OSTI);
        let (ranks, _) = pagerank_push(&lg, &mut ctx, cfg, engine);
        lg.masters()
            .map(|m| (lg.gid(m).0, ranks[m.index()]))
            .collect::<Vec<_>>()
    });
    let mut out = vec![0.0; graph.num_nodes() as usize];
    for host in per_host {
        for (gid, r) in host {
            out[gid as usize] = r;
        }
    }
    out
}

fn run_pull(
    graph: &gluon_suite::graph::Csr,
    hosts: usize,
    policy: Policy,
    engine: EngineKind,
    cfg: PagerankConfig,
) -> Vec<f64> {
    let per_host = run_cluster(hosts, |ep| {
        let comm = Communicator::new(ep);
        let mut lg = partition_on_host(graph, policy, &comm);
        lg.build_transpose();
        let mut ctx = GluonContext::new(&lg, &comm, OptLevel::OSTI);
        let (ranks, _) = pagerank(&lg, &mut ctx, cfg, engine);
        lg.masters()
            .map(|m| (lg.gid(m).0, ranks[m.index()]))
            .collect::<Vec<_>>()
    });
    let mut out = vec![0.0; graph.num_nodes() as usize];
    for host in per_host {
        for (gid, r) in host {
            out[gid as usize] = r;
        }
    }
    out
}

#[test]
fn push_matches_reference_fixpoint() {
    let g = gen::rmat(8, 8, Default::default(), 71);
    let cfg = PagerankConfig {
        damping: 0.85,
        tolerance: 1e-7,
        max_iters: 300,
    };
    let push = run_push(&g, 3, Policy::Cvc, EngineKind::Galois, cfg);
    let (oracle, _) = reference::pagerank(&g, 0.85, 1e-10, 500);
    for (v, (got, want)) in push.iter().zip(&oracle).enumerate() {
        assert!(
            (got - want).abs() < 1e-4,
            "node {v}: push {got} vs oracle {want}"
        );
    }
}

#[test]
fn push_and_pull_agree_across_engines() {
    let g = gen::web_like(1_000, 10, 2.0, 72);
    let cfg = PagerankConfig {
        damping: 0.85,
        tolerance: 1e-7,
        max_iters: 300,
    };
    let pull = run_pull(&g, 4, Policy::Oec, EngineKind::Galois, cfg);
    for engine in EngineKind::ALL {
        let push = run_push(&g, 4, Policy::Oec, engine, cfg);
        for (v, (a, b)) in push.iter().zip(&pull).enumerate() {
            assert!((a - b).abs() < 1e-4, "{engine} node {v}: {a} vs {b}");
        }
    }
}

#[test]
fn push_works_under_vertex_cuts() {
    let g = gen::twitter_like(1_200, 12, 73);
    let cfg = PagerankConfig {
        damping: 0.85,
        tolerance: 1e-7,
        max_iters: 300,
    };
    let (oracle, _) = reference::pagerank(&g, 0.85, 1e-10, 500);
    for policy in [Policy::Cvc, Policy::Hvc, Policy::Iec] {
        let push = run_push(&g, 4, policy, EngineKind::Irgl, cfg);
        for (v, (got, want)) in push.iter().zip(&oracle).enumerate() {
            assert!(
                (got - want).abs() < 1e-4,
                "{policy} node {v}: {got} vs {want}"
            );
        }
    }
}
