//! Failure-injection and degenerate-input tests: empty partitions,
//! isolated nodes, self loops, duplicate edges, unreachable sources,
//! more hosts than nodes, and out-of-order message consumption.

use bytes::Bytes;
use gluon_suite::algos::{driver, reference, Algorithm, DistConfig, EngineKind};
use gluon_suite::graph::{gen, Csr, Gid};
use gluon_suite::net::{run_cluster, Communicator, MemoryTransport, Transport};
use gluon_suite::partition::Policy;
use gluon_suite::substrate::OptLevel;

fn all_cfgs(hosts: usize) -> impl Iterator<Item = DistConfig> {
    [Policy::Oec, Policy::Cvc, Policy::Hvc]
        .into_iter()
        .map(move |policy| DistConfig {
            hosts,
            policy,
            opts: OptLevel::OSTI,
            engine: EngineKind::Galois,
        })
}

#[test]
fn graph_with_no_edges() {
    let g = Csr::empty(20);
    for cfg in all_cfgs(4) {
        let out = driver::Run::new(&g, Algorithm::Bfs).config(&cfg).launch();
        let mut expect = vec![u32::MAX; 20];
        expect[0] = 0; // max-out-degree source defaults to node 0
        assert_eq!(out.int_labels, expect);
        let cc = driver::Run::new(&g, Algorithm::Cc).config(&cfg).launch();
        assert_eq!(cc.int_labels, (0..20).collect::<Vec<_>>());
    }
}

#[test]
fn single_node_graph() {
    let g = Csr::empty(1);
    for cfg in all_cfgs(3) {
        let out = driver::Run::new(&g, Algorithm::Bfs).config(&cfg).launch();
        assert_eq!(out.int_labels, vec![0]);
        let pr = driver::Run::new(&g, Algorithm::Pagerank)
            .config(&cfg)
            .launch();
        // An edgeless node converges to the base rank (1 - d) / N = 0.15;
        // dangling mass is not redistributed (see `reference::pagerank`).
        assert!((pr.ranks[0] - 0.15).abs() < 1e-6, "base rank only");
    }
}

#[test]
fn more_hosts_than_nodes() {
    let g = gen::path(3);
    for cfg in all_cfgs(8) {
        let out = driver::Run::new(&g, Algorithm::Bfs).config(&cfg).launch();
        assert_eq!(out.int_labels, reference::bfs(&g, Gid(0)));
    }
}

#[test]
fn self_loops_and_duplicate_edges() {
    let g = Csr::from_weighted_edge_list(
        4,
        &[
            (0, 0, 5), // self loop
            (0, 1, 3),
            (0, 1, 1), // duplicate with a better weight
            (1, 2, 2),
            (2, 2, 1), // self loop
        ],
    );
    for cfg in all_cfgs(3) {
        let out = driver::Run::new(&g, Algorithm::Sssp)
            .config(&cfg)
            .source(Gid(0))
            .pagerank(Default::default())
            .launch();
        assert_eq!(out.int_labels, reference::sssp(&g, Gid(0)));
        assert_eq!(out.int_labels, vec![0, 1, 3, u32::MAX]);
    }
}

#[test]
fn unreachable_source_component() {
    // Source reaches nothing; everything stays at infinity except itself.
    let mut edges = vec![(1u32, 2u32), (2, 3), (3, 1)];
    edges.push((4, 4));
    let g = Csr::from_edge_list(5, &edges);
    for cfg in all_cfgs(2) {
        let out = driver::Run::new(&g, Algorithm::Bfs)
            .config(&cfg)
            .source(Gid(0))
            .pagerank(Default::default())
            .launch();
        assert_eq!(out.int_labels[0], 0);
        assert!(out.int_labels[1..].iter().all(|&d| d == u32::MAX));
    }
}

#[test]
fn isolated_hub_free_graph_with_every_engine() {
    // Half the nodes isolated: masters with no proxies elsewhere.
    let mut edges = Vec::new();
    for v in 0..20u32 {
        edges.push((v, v + 1));
    }
    let g = Csr::from_edge_list(64, &edges);
    for engine in EngineKind::ALL {
        let cfg = DistConfig {
            hosts: 4,
            policy: Policy::Cvc,
            opts: OptLevel::OSTI,
            engine,
        };
        let out = driver::Run::new(&g, Algorithm::Bfs)
            .config(&cfg)
            .source(Gid(0))
            .pagerank(Default::default())
            .launch();
        assert_eq!(out.int_labels, reference::bfs(&g, Gid(0)), "{engine}");
    }
}

#[test]
fn transport_tolerates_out_of_order_consumption() {
    // A host that consumes tags in reverse order must still see every
    // message exactly once — the stash layer the BSP phases rely on.
    let results = run_cluster(2, |ep| {
        if ep.rank() == 0 {
            for tag in 0..10u32 {
                ep.try_send(1, tag, Bytes::copy_from_slice(&[tag as u8]))
                    .unwrap();
            }
            Vec::new()
        } else {
            (0..10u32)
                .rev()
                .map(|tag| ep.try_recv(0, tag).unwrap()[0])
                .collect::<Vec<u8>>()
        }
    });
    assert_eq!(results[1], vec![9, 8, 7, 6, 5, 4, 3, 2, 1, 0]);
}

#[test]
fn interleaved_sync_and_collectives_do_not_cross_talk() {
    // Mixing user-tag traffic with collectives in the same round stays
    // correctly matched (tag-space separation).
    let sums = run_cluster(3, |ep| {
        let comm = Communicator::new(ep);
        let mut total = 0u64;
        for round in 0..20u64 {
            let next = (ep.rank() + 1) % 3;
            let prev = (ep.rank() + 2) % 3;
            ep.try_send(next, 7, Bytes::copy_from_slice(&round.to_le_bytes()))
                .unwrap();
            total += comm.all_reduce_u64(1, |a, b| a + b);
            let got = ep.try_recv(prev, 7).unwrap();
            assert_eq!(u64::from_le_bytes(got[..8].try_into().unwrap()), round);
            comm.barrier();
        }
        total
    });
    assert!(sums.iter().all(|&s| s == 60));
}

#[test]
fn zero_byte_payloads_are_delivered() {
    let out = run_cluster(2, |ep| {
        if ep.rank() == 0 {
            ep.try_send(1, 0, Bytes::new()).unwrap();
            0
        } else {
            ep.try_recv(0, 0).unwrap().len()
        }
    });
    assert_eq!(out[1], 0);
}

#[test]
fn dist_config_debug_and_helpers() {
    let cfg = DistConfig::new(4);
    let text = format!("{cfg:?}");
    assert!(text.contains("Cvc"));
    assert!(text.contains("hosts: 4"));
    let _ = MemoryTransport::cluster(1);
}

/// The whole stack — partitioning handshake, memoization, sync phases,
/// termination — survives a transport that delays and reorders deliveries
/// across streams (per-stream FIFO preserved, as real NICs guarantee).
#[test]
fn full_bfs_survives_message_jitter() {
    use gluon_suite::algos::apps;
    use gluon_suite::algos::EngineKind;
    use gluon_suite::net::JitterTransport;
    use gluon_suite::partition::partition_on_host;
    use gluon_suite::substrate::GluonContext;

    let g = gen::rmat(7, 8, Default::default(), 123);
    let source = gluon_suite::graph::max_out_degree_node(&g);
    let oracle = reference::bfs(&g, source);
    for trial in 0..3u64 {
        let endpoints = MemoryTransport::cluster(4);
        let jittered: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, ep)| JitterTransport::new(ep, trial * 100 + rank as u64))
            .collect();
        let per_host = std::thread::scope(|s| {
            let handles: Vec<_> = jittered
                .iter()
                .map(|ep| {
                    let g = &g;
                    s.spawn(move || {
                        let comm = Communicator::new(ep);
                        let lg = partition_on_host(g, Policy::Cvc, &comm);
                        let mut ctx = GluonContext::new(&lg, &comm, OptLevel::OSTI);
                        let (dist, _) = apps::bfs(&lg, &mut ctx, source, EngineKind::Galois);
                        lg.masters()
                            .map(|m| (lg.gid(m).0, dist[m.index()]))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect::<Vec<_>>()
        });
        let mut got = vec![u32::MAX; g.num_nodes() as usize];
        for host in per_host {
            for (gid, d) in host {
                got[gid as usize] = d;
            }
        }
        assert_eq!(got, oracle, "trial {trial}");
    }
}
