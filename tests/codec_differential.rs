//! Differential oracle for the wire codec: a deliberately naive reference
//! encoder/decoder, written straight from the DESIGN.md wire-format table
//! with no shared helpers, must agree with the production codec byte for
//! byte — for every wire mode, forced and adaptively chosen — and both
//! decoders must recover the identical update set.
//!
//! The reference favours obviousness over speed (plain `Vec<u8>`, one loop
//! per field); any divergence is a codec bug or a silent format change.

use gluon_suite::graph::Gid;
use gluon_suite::substrate::encode::{
    candidate_sizes, decode_gid_values, decode_memoized, encode_gid_values, encode_memoized,
    encode_memoized_as, encode_memoized_with, WireMode,
};

// ---------------------------------------------------------------- reference

/// LEB128, least-significant group first.
fn ref_put_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn ref_read_varint(body: &[u8], cursor: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *body.get(*cursor)?;
        *cursor += 1;
        if shift >= 64 {
            return None;
        }
        x |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
    }
}

/// `[unset, set, unset, set, …]` run lengths of the update set; the first
/// unset run may be zero, the trailing unset run is implicit.
fn ref_runs(updated: &[u32]) -> Vec<u64> {
    let mut runs = Vec::new();
    let mut prev_end = 0u64; // one past the previous set run
    let mut i = 0;
    while i < updated.len() {
        let start = u64::from(updated[i]);
        let mut end = start + 1;
        while i + 1 < updated.len() && u64::from(updated[i + 1]) == end {
            end += 1;
            i += 1;
        }
        runs.push(start - prev_end);
        runs.push(end - start);
        prev_end = end;
        i += 1;
    }
    runs
}

/// Encodes `updated` in one specific mode, or `None` where the mode does
/// not apply (mirrors the production `encode_memoized_as` contract).
fn ref_encode(
    mode: WireMode,
    list_len: usize,
    updated: &[u32],
    value_at: impl Fn(usize) -> u32,
) -> Option<Vec<u8>> {
    if updated.is_empty() && mode != WireMode::Empty {
        // An empty update set is always the 1-byte Empty payload; no other
        // mode applies.
        return None;
    }
    let vals: Vec<u8> = updated
        .iter()
        .flat_map(|&p| value_at(p as usize).to_le_bytes())
        .collect();
    let same = vals.chunks(4).skip(1).all(|c| c == &vals[..4]);
    let mut out = vec![mode as u8];
    match mode {
        WireMode::Empty => {
            if !updated.is_empty() {
                return None;
            }
        }
        WireMode::Dense => {
            for pos in 0..list_len {
                out.extend_from_slice(&value_at(pos).to_le_bytes());
            }
        }
        WireMode::Bitvec => {
            let mut bits = vec![0u8; list_len.div_ceil(8)];
            for &p in updated {
                bits[p as usize / 8] |= 1 << (p % 8);
            }
            out.extend_from_slice(&bits);
            out.extend_from_slice(&vals);
        }
        WireMode::Indices => {
            out.extend_from_slice(&(updated.len() as u32).to_le_bytes());
            for &p in updated {
                out.extend_from_slice(&p.to_le_bytes());
            }
            out.extend_from_slice(&vals);
        }
        WireMode::IndicesDelta | WireMode::SameIndicesDelta => {
            if updated.is_empty() || (mode == WireMode::SameIndicesDelta && !same) {
                return None;
            }
            ref_put_varint(&mut out, updated.len() as u64);
            ref_put_varint(&mut out, u64::from(updated[0]));
            for w in updated.windows(2) {
                ref_put_varint(&mut out, u64::from(w[1] - w[0] - 1));
            }
            if mode == WireMode::SameIndicesDelta {
                out.extend_from_slice(&vals[..4]);
            } else {
                out.extend_from_slice(&vals);
            }
        }
        WireMode::RunLength | WireMode::SameRunLength => {
            if updated.is_empty() || (mode == WireMode::SameRunLength && !same) {
                return None;
            }
            let runs = ref_runs(updated);
            ref_put_varint(&mut out, runs.len() as u64);
            for &r in &runs {
                ref_put_varint(&mut out, r);
            }
            if mode == WireMode::SameRunLength {
                out.extend_from_slice(&vals[..4]);
            } else {
                out.extend_from_slice(&vals);
            }
        }
        WireMode::GidValues => return None, // separate entry point
    }
    Some(out)
}

/// Decodes any memoized-mode payload into `(position, value)` pairs.
/// Returns `None` on malformed input (the reference does not classify
/// errors, it only refuses to produce garbage).
fn ref_decode(payload: &[u8], list_len: usize) -> Option<Vec<(usize, u32)>> {
    let (&mode, body) = payload.split_first()?;
    let read_val = |b: &[u8], i: usize| -> Option<u32> {
        Some(u32::from_le_bytes(b.get(i..i + 4)?.try_into().ok()?))
    };
    let mut got = Vec::new();
    match mode {
        0 => {
            if !body.is_empty() {
                return None;
            }
        }
        1 => {
            if body.len() != list_len * 4 {
                return None;
            }
            for pos in 0..list_len {
                got.push((pos, read_val(body, pos * 4)?));
            }
        }
        2 => {
            let nbytes = list_len.div_ceil(8);
            let bits = body.get(..nbytes)?;
            let mut positions = Vec::new();
            for pos in 0..list_len {
                if bits[pos / 8] >> (pos % 8) & 1 == 1 {
                    positions.push(pos);
                }
            }
            // Padding bits past `list_len` must be zero.
            for pad in list_len..nbytes * 8 {
                if bits[pad / 8] >> (pad % 8) & 1 == 1 {
                    return None;
                }
            }
            if body.len() != nbytes + positions.len() * 4 {
                return None;
            }
            for (i, pos) in positions.into_iter().enumerate() {
                got.push((pos, read_val(body, nbytes + i * 4)?));
            }
        }
        3 => {
            let k = u32::from_le_bytes(body.get(..4)?.try_into().ok()?) as usize;
            if body.len() != 4 + k * 8 {
                return None;
            }
            let mut prev: Option<u32> = None;
            for i in 0..k {
                let p = u32::from_le_bytes(body.get(4 + i * 4..8 + i * 4)?.try_into().ok()?);
                if prev.is_some_and(|q| q >= p) || p as usize >= list_len {
                    return None;
                }
                prev = Some(p);
                got.push((p as usize, read_val(body, 4 + k * 4 + i * 4)?));
            }
        }
        5 | 7 => {
            let mut cur = 0;
            let k = ref_read_varint(body, &mut cur)? as usize;
            if k == 0 || k > list_len {
                return None;
            }
            let mut positions = Vec::with_capacity(k);
            let mut pos = ref_read_varint(body, &mut cur)?;
            positions.push(pos);
            for _ in 1..k {
                pos = pos.checked_add(ref_read_varint(body, &mut cur)? + 1)?;
                positions.push(pos);
            }
            if *positions.last()? >= list_len as u64 {
                return None;
            }
            let vbytes = if mode == 7 { 4 } else { k * 4 };
            if body.len() != cur + vbytes {
                return None;
            }
            for (i, p) in positions.into_iter().enumerate() {
                let at = if mode == 7 { cur } else { cur + i * 4 };
                got.push((p as usize, read_val(body, at)?));
            }
        }
        6 | 8 => {
            let mut cur = 0;
            let n_runs = ref_read_varint(body, &mut cur)? as usize;
            if n_runs == 0 || !n_runs.is_multiple_of(2) {
                return None;
            }
            let mut positions = Vec::new();
            let mut at = 0u64;
            for i in 0..n_runs {
                let run = ref_read_varint(body, &mut cur)?;
                if run == 0 && i > 0 {
                    return None;
                }
                if i % 2 == 1 {
                    for p in at..at.checked_add(run)? {
                        positions.push(p);
                    }
                }
                at = at.checked_add(run)?;
                if at > list_len as u64 {
                    return None;
                }
            }
            let k = positions.len();
            let vbytes = if mode == 8 { 4 } else { k * 4 };
            if body.len() != cur + vbytes {
                return None;
            }
            for (i, p) in positions.into_iter().enumerate() {
                let vat = if mode == 8 { cur } else { cur + i * 4 };
                got.push((p as usize, read_val(body, vat)?));
            }
        }
        _ => return None, // gid_values (4) and unknown bytes
    }
    Some(got)
}

// ------------------------------------------------------------------ corpus

/// Update-set shapes chosen to exercise every mode's strengths: empty,
/// full, single, consecutive runs, scattered strides, clustered blocks,
/// and extremes of the position range.
fn corpus() -> Vec<(usize, Vec<u32>)> {
    let mut cases = vec![
        (1, vec![]),
        (1, vec![0]),
        (8, vec![0, 1, 2, 3, 4, 5, 6, 7]),
        (9, vec![8]),
        (64, vec![0]),
        (64, vec![63]),
        (64, vec![0, 63]),
        (64, (10..30).collect()),
        (64, (0..64).step_by(2).collect()),
        (100, (0..100).step_by(5).collect()),
        (100, vec![1, 2, 3, 50, 51, 52, 97, 98, 99]),
        (1000, vec![500]),
        (1000, (990..1000).collect()),
        (10_000, vec![3, 9_876]),
        (10_000, (0..10_000).step_by(777).collect()),
    ];
    // A pseudo-random scatter (fixed multiplier walk, no RNG dependency).
    let mut x = 9_973u64;
    let mut scatter: Vec<u32> = (0..40)
        .map(|_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (x >> 33) as u32 % 5_000
        })
        .collect();
    scatter.sort_unstable();
    scatter.dedup();
    cases.push((5_000, scatter));
    cases
}

const FORCIBLE: [WireMode; 7] = [
    WireMode::Dense,
    WireMode::Bitvec,
    WireMode::Indices,
    WireMode::IndicesDelta,
    WireMode::RunLength,
    WireMode::SameIndicesDelta,
    WireMode::SameRunLength,
];

fn check_case(list_len: usize, updated: &[u32], value_at: impl Fn(usize) -> u32 + Copy) {
    let expect: Vec<(usize, u32)> = updated
        .iter()
        .map(|&p| (p as usize, value_at(p as usize)))
        .collect();
    for mode in FORCIBLE {
        let prod = encode_memoized_as(mode, list_len, updated, value_at);
        let reference = ref_encode(mode, list_len, updated, value_at);
        let ctx = format!("{mode:?} / len {list_len} / k {}", updated.len());
        match (prod, reference) {
            (None, None) => {}
            (Some(p), Some(r)) => {
                assert_eq!(&p[..], &r[..], "{ctx}: encodings diverge");
                // Cross-decode: each decoder on the other's bytes.
                let mut prod_got = Vec::new();
                decode_memoized::<u32>(&r, list_len, &mut |pos, v| prod_got.push((pos, v)))
                    .unwrap_or_else(|e| panic!("{ctx}: production decoder rejected: {e}"));
                let ref_got = ref_decode(&p, list_len)
                    .unwrap_or_else(|| panic!("{ctx}: reference decoder rejected"));
                if mode == WireMode::Dense {
                    // Dense carries every position; the updated subset must
                    // be present with its value.
                    for &(pos, v) in &expect {
                        assert_eq!(prod_got[pos], (pos, v), "{ctx}");
                        assert_eq!(ref_got[pos], (pos, v), "{ctx}");
                    }
                } else {
                    assert_eq!(prod_got, expect, "{ctx}: production decode");
                    assert_eq!(ref_got, expect, "{ctx}: reference decode");
                }
            }
            (p, r) => panic!(
                "{ctx}: applicability diverges (production {:?}, reference {:?})",
                p.is_some(),
                r.is_some()
            ),
        }
    }
    // The adaptive encoder must agree with a naive "try everything, keep
    // the smallest, earlier candidates win ties" selector over the
    // reference encodings (`min_by_key` keeps the first minimum).
    for compress in [true, false] {
        let prod = encode_memoized_with(list_len, updated, value_at, compress);
        if updated.is_empty() {
            assert_eq!(&prod[..], &[0u8], "empty update set must send one byte");
            continue;
        }
        let candidates: &[WireMode] = if compress { &FORCIBLE } else { &FORCIBLE[..3] };
        let mut best: Option<Vec<u8>> = None;
        for &mode in candidates {
            if let Some(bytes) = ref_encode(mode, list_len, updated, value_at) {
                if best.as_ref().is_none_or(|b| bytes.len() < b.len()) {
                    best = Some(bytes);
                }
            }
        }
        let best = best.expect("dense always applies");
        assert_eq!(
            &prod[..],
            &best[..],
            "adaptive(list {list_len}, k {}, compress {compress}) diverges from \
             the reference selector",
            updated.len()
        );
    }
}

// ------------------------------------------------------------------- tests

#[test]
fn production_and_reference_codecs_agree_on_distinct_values() {
    for (list_len, updated) in corpus() {
        check_case(list_len, &updated, |p| {
            (p as u32).wrapping_mul(2_654_435_761)
        });
    }
}

#[test]
fn production_and_reference_codecs_agree_on_identical_values() {
    for (list_len, updated) in corpus() {
        check_case(list_len, &updated, |_| 0xDEAD_BEEF);
    }
}

#[test]
fn adaptive_choice_matches_published_candidate_sizes() {
    // `candidate_sizes` is the public contract for "what the selector saw";
    // the reference encodings must land on exactly those sizes.
    for (list_len, updated) in corpus() {
        if updated.is_empty() {
            continue;
        }
        for same in [false, true] {
            let value_at = move |p: usize| if same { 42 } else { p as u32 + 7 };
            let identical = same || updated.len() == 1;
            for (mode, size) in candidate_sizes::<u32>(list_len, &updated, identical, true) {
                let reference = ref_encode(mode, list_len, &updated, value_at)
                    .unwrap_or_else(|| panic!("{mode:?} listed but not encodable"));
                assert_eq!(
                    reference.len(),
                    size,
                    "{mode:?} size table wrong for len {list_len}, k {}",
                    updated.len()
                );
            }
        }
    }
}

#[test]
fn gid_value_payloads_agree_with_the_reference() {
    let pairs: Vec<(Gid, u32)> = (0..257).map(|i| (Gid(i * 37), i ^ 0x55AA)).collect();
    let prod = encode_gid_values(&pairs);
    let mut reference = vec![4u8]; // gid_values mode byte
    for &(g, v) in &pairs {
        reference.extend_from_slice(&g.0.to_le_bytes());
        reference.extend_from_slice(&v.to_le_bytes());
    }
    assert_eq!(&prod[..], &reference[..]);
    let mut got = Vec::new();
    decode_gid_values::<u32>(&reference, &mut |g, v| got.push((g, v))).expect("valid payload");
    assert_eq!(got, pairs);
}

#[test]
fn adaptive_never_exceeds_any_reference_encoding() {
    // Belt and braces over the whole corpus: the chosen payload is no
    // larger than *every* reference mode that applies.
    for (list_len, updated) in corpus() {
        let value_at = |p: usize| p as u32;
        let chosen = encode_memoized(list_len, &updated, value_at);
        for mode in FORCIBLE {
            if let Some(reference) = ref_encode(mode, list_len, &updated, value_at) {
                assert!(
                    chosen.len() <= reference.len(),
                    "adaptive {} bytes > {mode:?} {} bytes (len {list_len}, k {})",
                    chosen.len(),
                    reference.len(),
                    updated.len()
                );
            }
        }
    }
}
