//! Cross-crate equivalence tests: every distributed configuration must
//! produce the same answers as the single-host reference oracles.

use gluon_suite::algos::{driver, reference, Algorithm, DistConfig, EngineKind};
use gluon_suite::graph::{gen, max_out_degree_node, Csr};
use gluon_suite::partition::Policy;
use gluon_suite::substrate::OptLevel;

fn check(graph: &Csr, algo: Algorithm, cfg: &DistConfig) {
    let out = driver::Run::new(graph, algo).config(cfg).launch();
    match algo {
        Algorithm::Bfs => {
            let oracle = reference::bfs(graph, max_out_degree_node(graph));
            assert_eq!(out.int_labels, oracle, "bfs {cfg:?}");
        }
        Algorithm::Sssp => {
            let oracle = reference::sssp(graph, max_out_degree_node(graph));
            assert_eq!(out.int_labels, oracle, "sssp {cfg:?}");
        }
        Algorithm::Cc => {
            assert_eq!(out.int_labels, reference::cc(graph), "cc {cfg:?}");
        }
        Algorithm::Pagerank => {
            let (oracle, _) = reference::pagerank(graph, 0.85, 1e-6, 100);
            for (i, (got, want)) in out.ranks.iter().zip(&oracle).enumerate() {
                assert!(
                    (got - want).abs() < 1e-6,
                    "pr node {i}: {got} vs {want} {cfg:?}"
                );
            }
        }
    }
}

#[test]
fn full_matrix_on_rmat() {
    // algorithms x engines x policies at a fixed host count and the
    // default optimization level.
    let base = gen::rmat(8, 8, Default::default(), 100);
    let weighted = gen::with_random_weights(&base, 50, 4);
    for algo in Algorithm::ALL {
        let graph = if algo == Algorithm::Sssp {
            &weighted
        } else {
            &base
        };
        for engine in EngineKind::ALL {
            for policy in Policy::ALL {
                check(
                    graph,
                    algo,
                    &DistConfig {
                        hosts: 3,
                        policy,
                        opts: OptLevel::OSTI,
                        engine,
                    },
                );
            }
        }
    }
}

#[test]
fn all_optimization_levels_agree() {
    let base = gen::twitter_like(3_000, 12, 8);
    let weighted = gen::with_random_weights(&base, 50, 5);
    for algo in Algorithm::ALL {
        let graph = if algo == Algorithm::Sssp {
            &weighted
        } else {
            &base
        };
        for opts in OptLevel::ALL {
            for policy in [Policy::Oec, Policy::Cvc, Policy::Hvc] {
                check(
                    graph,
                    algo,
                    &DistConfig {
                        hosts: 4,
                        policy,
                        opts,
                        engine: EngineKind::Galois,
                    },
                );
            }
        }
    }
}

#[test]
fn host_count_sweep() {
    let g = gen::web_like(2_000, 10, 2.0, 9);
    for hosts in [1, 2, 3, 5, 8, 13] {
        for algo in [Algorithm::Bfs, Algorithm::Cc] {
            check(
                &g,
                algo,
                &DistConfig {
                    hosts,
                    policy: Policy::Cvc,
                    opts: OptLevel::OSTI,
                    engine: EngineKind::Ligra,
                },
            );
        }
    }
}

#[test]
fn kron_input_with_irgl_engine() {
    let g = gen::kronecker(9, 8, 77);
    for algo in [Algorithm::Bfs, Algorithm::Cc, Algorithm::Pagerank] {
        check(
            &g,
            algo,
            &DistConfig {
                hosts: 4,
                policy: Policy::Iec,
                opts: OptLevel::OSTI,
                engine: EngineKind::Irgl,
            },
        );
    }
}

#[test]
fn structured_graphs_across_policies() {
    for graph in [
        gen::path(50),
        gen::cycle(40),
        gen::star(60),
        gen::binary_tree(6),
        gen::grid(8, 9),
    ] {
        for policy in Policy::ALL {
            check(
                &graph,
                Algorithm::Bfs,
                &DistConfig {
                    hosts: 3,
                    policy,
                    opts: OptLevel::OSTI,
                    engine: EngineKind::Galois,
                },
            );
        }
    }
}
